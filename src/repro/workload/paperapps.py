"""Hand-authored miniatures of the paper's three running-example apps.

These replicate, statement for statement where it matters, the code
shapes the paper illustrates:

* :func:`build_lg_tv_plus` — the LG TV Plus app of Figs. 3 and 4: a
  private sink-hosting method found by the basic search, reached through
  the ``NetcastTVService$1`` Runnable dispatched via
  ``Util.runInBackground`` → ``Executor.execute`` (the advanced search's
  flagship case), plus the explicit-ICC ``HttpServerService`` example of
  Sec. IV-D.
* :func:`build_heyzap` — the Heyzap ad library of Sec. IV-C: a
  ``setHostnameVerifier`` sink whose backtracking crosses
  ``APIClient.<clinit>``, reachable only through the recursive class-use
  chain ``APIClient ← AdModel ← HeyzapInterstitialActivity``.
* :func:`build_palcomp3` — the PalcoMP3 app of Fig. 6: the full SSG
  shape with instance fields (``hostname``/``myPort``), a constructor
  chain, a child-class invocation of a super-class method, and an
  off-path static initializer supplying ``PORT = 8089``.
"""

from __future__ import annotations

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.dex.builder import AppBuilder


def build_lg_tv_plus() -> Apk:
    """The LG TV Plus miniature (Figs. 3-4 + the Sec. IV-D ICC example)."""
    app = AppBuilder()

    # --- NetcastHttpServer: the sink-hosting target method -------------
    server = app.new_class("com.connectsdk.service.netcast.NetcastHttpServer")
    server.default_constructor()
    start = server.method("start", private=True)
    this = start.this()
    port = start.const_int(8080)
    start.new_init("java.net.ServerSocket", args=[port], ctor_params=["int"])
    start.return_void()

    # --- NetcastTVService + its anonymous Runnable ---------------------
    service = app.new_class("com.connectsdk.service.NetcastTVService")
    service.field("httpServer", "com.connectsdk.service.netcast.NetcastHttpServer")
    service.default_constructor()
    connect = service.method("connect")
    c_this = connect.this()
    runner_obj = connect.new_init(
        "com.connectsdk.service.NetcastTVService$1",
        args=[c_this],
        ctor_params=["com.connectsdk.service.NetcastTVService"],
    )
    connect.invoke_static(
        "com.connectsdk.core.Util",
        "runInBackground",
        args=[runner_obj],
        params=["java.lang.Runnable"],
    )
    connect.return_void()

    runner = app.new_class(
        "com.connectsdk.service.NetcastTVService$1",
        interfaces=["java.lang.Runnable"],
    )
    runner.field("this$0", "com.connectsdk.service.NetcastTVService")
    r_ctor = runner.constructor(params=["com.connectsdk.service.NetcastTVService"])
    r_this = r_ctor.this()
    r_outer = r_ctor.param(0)
    r_ctor.put_field(
        r_this,
        "com.connectsdk.service.NetcastTVService$1",
        "this$0",
        "com.connectsdk.service.NetcastTVService",
        r_outer,
    )
    r_ctor.return_void()
    run = runner.method("run")
    run_this = run.this()
    outer = run.get_field(
        run_this,
        "com.connectsdk.service.NetcastTVService$1",
        "this$0",
        "com.connectsdk.service.NetcastTVService",
    )
    srv = run.new_init("com.connectsdk.service.netcast.NetcastHttpServer")
    run.put_field(
        outer,
        "com.connectsdk.service.NetcastTVService",
        "httpServer",
        "com.connectsdk.service.netcast.NetcastHttpServer",
        srv,
    )
    srv2 = run.get_field(
        outer,
        "com.connectsdk.service.NetcastTVService",
        "httpServer",
        "com.connectsdk.service.netcast.NetcastHttpServer",
    )
    run.invoke_virtual(
        srv2, "com.connectsdk.service.netcast.NetcastHttpServer", "start"
    )
    run.return_void()

    # --- Util: the wrapper chain of Fig. 4 ------------------------------
    util = app.new_class("com.connectsdk.core.Util")
    util.field("executor", "java.util.concurrent.Executor", static=True)
    clinit = util.static_initializer()
    pool_local = clinit.invoke_static(
        "java.util.concurrent.Executors",
        "newCachedThreadPool",
        returns="java.util.concurrent.ExecutorService",
    )
    clinit.put_static(
        "com.connectsdk.core.Util", "executor", "java.util.concurrent.Executor",
        pool_local,
    )
    clinit.return_void()
    rib1 = util.method("runInBackground", params=["java.lang.Runnable"], static=True)
    rib1_r0 = rib1.param(0)
    rib1.invoke_static(
        "com.connectsdk.core.Util",
        "runInBackground",
        args=[rib1_r0, 0],
        params=["java.lang.Runnable", "boolean"],
    )
    rib1.return_void()
    rib2 = util.method(
        "runInBackground", params=["java.lang.Runnable", "boolean"], static=True
    )
    rib2_r0 = rib2.param(0)
    rib2.param(1)
    executor_local = rib2.get_static(
        "com.connectsdk.core.Util", "executor", "java.util.concurrent.Executor"
    )
    rib2.invoke_interface(
        executor_local,
        "java.util.concurrent.Executor",
        "execute",
        args=[rib2_r0],
        params=["java.lang.Runnable"],
    )
    rib2.return_void()

    # --- explicit-ICC service (Sec. IV-D example) ----------------------
    fota = app.new_class(
        "com.lge.app1.fota.HttpServerService", superclass="android.app.Service"
    )
    fota.default_constructor()
    f_on_create = fota.method("onCreate")
    f_this = f_on_create.this()
    f_port = f_on_create.const_int(5299)
    f_on_create.new_init("java.net.ServerSocket", args=[f_port], ctor_params=["int"])
    f_on_create.return_void()

    # --- the entry Activity ------------------------------------------------
    main = app.new_class("com.lge.app1.MainActivity", superclass="android.app.Activity")
    main.default_constructor()
    on_create = main.method("onCreate", params=["android.os.Bundle"])
    m_this = on_create.this()
    on_create.param(0)
    tv = on_create.new_init("com.connectsdk.service.NetcastTVService")
    on_create.invoke_virtual(tv, "com.connectsdk.service.NetcastTVService", "connect")
    klass = on_create.const_class("com.lge.app1.fota.HttpServerService")
    intent = on_create.new_init(
        "android.content.Intent",
        args=[m_this, klass],
        ctor_params=["android.content.Context", "java.lang.Class"],
    )
    on_create.invoke_virtual(
        m_this,
        "android.content.Context",
        "startService",
        args=[intent],
        params=["android.content.Intent"],
        returns="android.content.ComponentName",
    )
    on_create.return_void()

    manifest = Manifest(package="com.lge.app1")
    manifest.register(
        "com.lge.app1.MainActivity",
        ComponentKind.ACTIVITY,
        exported=True,
        actions=["android.intent.action.MAIN"],
    )
    manifest.register("com.lge.app1.fota.HttpServerService", ComponentKind.SERVICE)

    return Apk(package="com.lge.app1", classes=app.build(), manifest=manifest,
               size_mb=74.2, year=2018, installs=10_000_000)


def build_heyzap() -> Apk:
    """The Heyzap miniature (Sec. IV-C static-initializer example)."""
    app = AppBuilder()

    # --- MySSLSocketFactory hosts the SSL sink ---------------------------
    factory = app.new_class(
        "com.heyzap.http.MySSLSocketFactory",
        superclass="org.apache.http.conn.ssl.SSLSocketFactory",
    )
    ctor = factory.constructor()
    f_this = ctor.this()
    verifier = ctor.get_static(
        "org.apache.http.conn.ssl.SSLSocketFactory",
        "ALLOW_ALL_HOSTNAME_VERIFIER",
        "org.apache.http.conn.ssl.X509HostnameVerifier",
    )
    ctor.invoke_virtual(
        f_this,
        "org.apache.http.conn.ssl.SSLSocketFactory",
        "setHostnameVerifier",
        args=[verifier],
        params=["org.apache.http.conn.ssl.X509HostnameVerifier"],
    )
    ctor.return_void()

    # --- APIClient's <clinit> constructs the factory ----------------------
    api_client = app.new_class("com.heyzap.internal.APIClient")
    api_client.field("sslFactory", "com.heyzap.http.MySSLSocketFactory", static=True)
    clinit = api_client.static_initializer()
    built = clinit.new_init("com.heyzap.http.MySSLSocketFactory")
    clinit.put_static(
        "com.heyzap.internal.APIClient", "sslFactory",
        "com.heyzap.http.MySSLSocketFactory", built,
    )
    clinit.return_void()
    get = api_client.method("get", params=["java.lang.String"], static=True)
    get.param(0)
    get.return_void()

    # --- AdModel uses APIClient -------------------------------------------
    ad_model = app.new_class("com.heyzap.house.model.AdModel")
    ad_model.default_constructor()
    load = ad_model.method("load")
    load.this()
    url = load.const_string("https://ads.heyzap.com/fetch")
    load.invoke_static(
        "com.heyzap.internal.APIClient", "get", args=[url],
        params=["java.lang.String"],
    )
    load.return_void()

    # --- the entry Activity uses AdModel ------------------------------------
    interstitial = app.new_class(
        "com.heyzap.sdk.ads.HeyzapInterstitialActivity",
        superclass="android.app.Activity",
    )
    interstitial.default_constructor()
    on_create = interstitial.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    model = on_create.new_init("com.heyzap.house.model.AdModel")
    on_create.invoke_virtual(model, "com.heyzap.house.model.AdModel", "load")
    on_create.return_void()

    manifest = Manifest(package="com.heyzap.demo")
    manifest.register(
        "com.heyzap.sdk.ads.HeyzapInterstitialActivity",
        ComponentKind.ACTIVITY,
        exported=True,
    )

    return Apk(package="com.heyzap.demo", classes=app.build(), manifest=manifest,
               size_mb=22.4, year=2017)


def build_palcomp3() -> Apk:
    """The PalcoMP3 miniature: the exact SSG shape of Fig. 6."""
    app = AppBuilder()

    # --- NanoHTTPD -------------------------------------------------------
    nano = app.new_class("com.studiosol.util.NanoHTTPD")
    nano.field("hostname", "java.lang.String")
    nano.field("myPort", "int")

    ctor2 = nano.constructor(params=["java.lang.String", "int"])
    n_this = ctor2.this()
    n_host = ctor2.param(0)
    n_port = ctor2.param(1)
    ctor2.invoke_special(n_this, "java.lang.Object", "<init>")
    ctor2.put_field(n_this, "com.studiosol.util.NanoHTTPD", "hostname",
                    "java.lang.String", n_host)
    ctor2.put_field(n_this, "com.studiosol.util.NanoHTTPD", "myPort", "int", n_port)
    ctor2.return_void()

    ctor1 = nano.constructor(params=["int"])
    c1_this = ctor1.this()
    c1_port = ctor1.param(0)
    ctor1.invoke_special(
        c1_this,
        "com.studiosol.util.NanoHTTPD",
        "<init>",
        args=[None, c1_port],
        params=["java.lang.String", "int"],
    )
    ctor1.return_void()

    start = nano.method("start")
    s_this = start.this()
    address = start.new("java.net.InetSocketAddress")
    hostname = start.get_field(s_this, "com.studiosol.util.NanoHTTPD", "hostname",
                               "java.lang.String")
    my_port = start.get_field(s_this, "com.studiosol.util.NanoHTTPD", "myPort", "int")
    start.invoke_special(
        address,
        "java.net.InetSocketAddress",
        "<init>",
        args=[hostname, my_port],
        params=["java.lang.String", "int"],
    )
    socket = start.new_init("java.net.ServerSocket")
    start.invoke_virtual(
        socket,
        "java.net.ServerSocket",
        "bind",
        args=[address],
        params=["java.net.SocketAddress"],
    )
    start.return_void()

    # --- MP3LocalServer: child class + off-path <clinit> --------------------
    mp3 = app.new_class(
        "com.studiosol.palcomp3.MP3LocalServer", superclass="com.studiosol.util.NanoHTTPD"
    )
    mp3.field("PORT", "int", static=True)
    clinit = mp3.static_initializer()
    clinit.put_static("com.studiosol.palcomp3.MP3LocalServer", "PORT", "int", 8089)
    clinit.return_void()
    m_ctor = mp3.constructor()
    m_this = m_ctor.this()
    m_port = m_ctor.get_static("com.studiosol.palcomp3.MP3LocalServer", "PORT", "int")
    m_ctor.invoke_special(
        m_this, "com.studiosol.util.NanoHTTPD", "<init>", args=[m_port], params=["int"]
    )
    m_ctor.return_void()

    # --- SmartCacheMgr --------------------------------------------------------
    mgr = app.new_class("com.studiosol.palcomp3.SmartCacheMgr")
    mgr.field("mServer", "com.studiosol.palcomp3.MP3LocalServer")
    mgr.default_constructor()
    init_srv = mgr.method("initLocalServer", params=["android.content.Context"])
    g_this = init_srv.this()
    init_srv.param(0)
    new_server = init_srv.new_init("com.studiosol.palcomp3.MP3LocalServer")
    init_srv.put_field(
        g_this, "com.studiosol.palcomp3.SmartCacheMgr", "mServer",
        "com.studiosol.palcomp3.MP3LocalServer", new_server,
    )
    init_srv.return_void()

    # --- the entry Activity ------------------------------------------------------
    act = app.new_class(
        "com.studiosol.palcomp3.Activities.PalcoMP3Act",
        superclass="android.app.Activity",
    )
    act.default_constructor()
    on_create = act.method("onCreate", params=["android.os.Bundle"])
    a_this = on_create.this()
    on_create.param(0)
    cache = on_create.new_init("com.studiosol.palcomp3.SmartCacheMgr")
    on_create.invoke_virtual(
        cache,
        "com.studiosol.palcomp3.SmartCacheMgr",
        "initLocalServer",
        args=[a_this],
        params=["android.content.Context"],
    )
    server = on_create.get_field(
        cache, "com.studiosol.palcomp3.SmartCacheMgr", "mServer",
        "com.studiosol.palcomp3.MP3LocalServer",
    )
    # A child-class invocation of the super-class method (Sec. IV-A's
    # "searching over a child class").
    on_create.invoke_virtual(
        server, "com.studiosol.palcomp3.MP3LocalServer", "start"
    )
    on_create.return_void()

    manifest = Manifest(package="com.studiosol.palcomp3")
    manifest.register(
        "com.studiosol.palcomp3.Activities.PalcoMP3Act",
        ComponentKind.ACTIVITY,
        exported=True,
        actions=["android.intent.action.MAIN"],
    )

    return Apk(package="com.studiosol.palcomp3", classes=app.build(),
               manifest=manifest, size_mb=18.6, year=2018)
