"""Sec. IV-C — recursive static-initializer search validation.

Paper: "Among 37 unique static initializers that are identified by our
recursive search as reachable, we find that all of them are actually
reachable from entry components."

The benchmark plants ~40 on-path static initializers (the Heyzap shape)
plus orphan initializers that nothing references, runs the recursive
search on each, and checks the verdicts against construction-time ground
truth.
"""

from benchmarks.conftest import emit_table, render_table
from repro.search.clinit import clinit_reachability_search
from repro.search.index import BytecodeSearcher
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PatternSpec

_ON_PATH_INSTANCES = 37
_ORPHANS_PER_APP = 1
_APPS = 10


def _run_experiment():
    verdicts = []  # (class_name, reachable, expected, chain_len)
    per_app = _ON_PATH_INSTANCES // _APPS + 1
    planted = 0
    for app_index in range(_APPS):
        count = min(per_app, _ON_PATH_INSTANCES - planted)
        if count <= 0:
            break
        planted += count
        patterns = tuple(PatternSpec("clinit_path", insecure=(i % 2 == 0))
                         for i in range(count))
        generated = generate_app(
            AppSpec(package=f"com.clinit.a{app_index}", seed=app_index,
                    patterns=patterns, filler_classes=6)
        )
        apk = generated.apk
        searcher = BytecodeSearcher(apk.disassembly)
        pool = apk.full_pool
        for i in range(count):
            class_name = f"com.clinit.a{app_index}.p{i}.ApiClient"
            result = clinit_reachability_search(
                searcher, pool, apk.manifest, class_name
            )
            verdicts.append((class_name, result.reachable, True, len(result.chain)))
        # Orphans: <clinit> of classes nothing references.
        for i in range(_ORPHANS_PER_APP):
            orphan = f"com.clinit.a{app_index}.gen.BaseTask"  # referenced -> control
        orphan_result = clinit_reachability_search(
            searcher, pool, apk.manifest, f"com.orphan.a{app_index}.Nothing"
        )
        verdicts.append(
            (f"com.orphan.a{app_index}.Nothing", orphan_result.reachable, False, 0)
        )
    return verdicts


def test_clinit_recursive_search(benchmark):
    verdicts = benchmark.pedantic(_run_experiment, rounds=1, iterations=1)

    on_path = [v for v in verdicts if v[2]]
    orphans = [v for v in verdicts if not v[2]]
    reachable_on_path = sum(1 for v in on_path if v[1])
    chain_lengths = [v[3] for v in on_path if v[1]]
    table = render_table(
        "Sec. IV-C: recursive <clinit> reachability search",
        ["Metric", "Measured", "Paper"],
        [
            ["on-path initializers planted", str(len(on_path)), "37"],
            ["identified reachable", str(reachable_on_path), "37 (all)"],
            ["ground-truth agreement",
             f"{reachable_on_path}/{len(on_path)}", "37/37"],
            ["orphan initializers misflagged",
             str(sum(1 for v in orphans if v[1])), "0"],
            ["mean witness-chain length",
             f"{sum(chain_lengths) / len(chain_lengths):.1f}" if chain_lengths
             else "-", "~3 (APIClient<-AdModel<-Activity)"],
        ],
    )
    emit_table("clinit_reachability", table)

    assert reachable_on_path == len(on_path), "every on-path clinit reachable"
    assert not any(v[1] for v in orphans), "orphan clinits must stay unreachable"
