"""Pattern-level ground-truth tests against BackDroid itself.

For every pattern template, BackDroid's verdict must match the
``expect_backdroid`` label — including the deliberate FN
(hierarchy_wrapped_sink) and the TNs (dead code, unregistered
components, secure variants).
"""

import pytest

from repro.core import BackDroid, BackDroidConfig
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PATTERN_BUILDERS, PatternSpec

_DETECTION_PATTERNS = sorted(
    name for name in PATTERN_BUILDERS if name != "hazard_dangling"
)


def _analyze(pattern: str, insecure: bool, config=None):
    spec = AppSpec(
        package="com.gt",
        seed=23,
        patterns=(PatternSpec(pattern, insecure=insecure),),
        filler_classes=2,
    )
    generated = generate_app(spec)
    report = BackDroid(config).analyze(generated.apk)
    return generated, report


class TestGroundTruthAgreement:
    @pytest.mark.parametrize("pattern", _DETECTION_PATTERNS)
    def test_insecure_variant_matches_expectation(self, pattern):
        generated, report = _analyze(pattern, insecure=True)
        expected = generated.truths[0].expect_backdroid
        assert report.vulnerable == expected, (
            f"{pattern}: expected vulnerable={expected}, "
            f"got {[str(f) for f in report.findings]}"
        )

    @pytest.mark.parametrize("pattern", _DETECTION_PATTERNS)
    def test_secure_variant_never_flagged(self, pattern):
        _, report = _analyze(pattern, insecure=False)
        assert not report.vulnerable


class TestDeliberateLimitation:
    def test_hierarchy_wrapped_fn_fixed_by_option(self):
        """The Sec. VI-C FN disappears with the class-hierarchy fix."""
        config = BackDroidConfig(check_class_hierarchy_in_initial_search=True)
        generated, report = _analyze("hierarchy_wrapped_sink", True, config)
        assert report.vulnerable
        assert generated.truths[0].expect_backdroid is False  # default FN

    def test_hazard_does_not_affect_backdroid(self):
        spec = AppSpec(
            package="com.gt", seed=29,
            patterns=(
                PatternSpec("hazard_dangling"),
                PatternSpec("direct_entry", insecure=True),
            ),
            filler_classes=2,
        )
        generated = generate_app(spec)
        report = BackDroid().analyze(generated.apk)
        assert report.vulnerable  # dangling refs break only the baseline
