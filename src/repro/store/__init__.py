"""Persistent warm-start artifacts for corpus batch runs.

* :mod:`repro.store.artifacts` — the content-addressed on-disk
  :class:`ArtifactStore`: per-app token streams, inverted-index posting
  lists and finished batch outcomes, keyed by a hash of the disassembly
  plaintext plus a format version, with atomic (rename-published) writes
  safe under the process-pool batch executor.
"""

from repro.store.artifacts import (
    FORMAT_VERSION,
    PROBE_LEVELS,
    WARM_LEVELS,
    ArtifactStore,
    StoreInventory,
    StoreProbe,
    StoreStats,
    VerifyEntry,
    store_key,
)

__all__ = [
    "FORMAT_VERSION",
    "PROBE_LEVELS",
    "WARM_LEVELS",
    "ArtifactStore",
    "StoreInventory",
    "StoreProbe",
    "StoreStats",
    "VerifyEntry",
    "store_key",
]
