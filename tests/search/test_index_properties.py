"""Property tests for the search index's hit attribution."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.apk import Apk
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature
from repro.search.index import BytecodeSearcher


@st.composite
def apps_with_markers(draw):
    """An app with distinctive string constants scattered over methods."""
    n_classes = draw(st.integers(min_value=1, max_value=4))
    n_methods = draw(st.integers(min_value=1, max_value=4))
    placements = {}
    app = AppBuilder()
    marker_id = 0
    for c in range(n_classes):
        cls = app.new_class(f"com.idx.C{c}")
        for m in range(n_methods):
            method = cls.method(f"m{m}", static=True)
            if draw(st.booleans()):
                marker = f"MARKER_{marker_id}"
                marker_id += 1
                method.const_string(marker)
                placements[marker] = MethodSignature(
                    f"com.idx.C{c}", f"m{m}", (), "void"
                )
            method.return_void()
    return Apk(package="com.idx", classes=app.build()), placements


class TestHitAttribution:
    @given(apps_with_markers())
    @settings(max_examples=30, deadline=None)
    def test_every_marker_attributed_to_its_method(self, case):
        """block_at_line maps each hit to exactly the method holding it."""
        apk, placements = case
        searcher = BytecodeSearcher(apk.disassembly)
        for marker, owner in placements.items():
            hits = searcher.find_const_string(marker)
            assert len(hits) == 1, marker
            assert hits[0].method == owner

    @given(apps_with_markers())
    @settings(max_examples=20, deadline=None)
    def test_absent_needles_have_no_hits(self, case):
        apk, placements = case
        searcher = BytecodeSearcher(apk.disassembly)
        assert searcher.find_const_string("NEVER_PRESENT_MARKER") == []

    @given(apps_with_markers())
    @settings(max_examples=20, deadline=None)
    def test_line_offsets_consistent(self, case):
        """Internal offset mapping agrees with naive line counting."""
        apk, _ = case
        searcher = BytecodeSearcher(apk.disassembly)
        text = searcher._text
        for probe in range(0, len(text), max(1, len(text) // 17)):
            expected_line = text.count("\n", 0, probe)
            assert searcher._line_of_offset(probe) == expected_line
