"""Unit tests for the Amandroid-style whole-app analyzer."""

from repro.baseline.config import AmandroidConfig
from repro.baseline.flowdroid_cg import FlowDroidStyleCallGraphGenerator
from repro.baseline.config import FlowDroidConfig
from repro.baseline.wholeapp import AmandroidStyleAnalyzer
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PatternSpec


def _run(pattern: str, insecure=True, config=None, rules=("crypto-ecb", "ssl-verifier")):
    spec = AppSpec(
        package="com.t",
        seed=11,
        patterns=(PatternSpec(pattern, insecure=insecure),),
        filler_classes=2,
    )
    generated = generate_app(spec)
    analyzer = AmandroidStyleAnalyzer(config or AmandroidConfig(), sink_rules=rules)
    return generated, analyzer.analyze(generated.apk)


class TestDetection:
    def test_direct_entry_detected(self):
        generated, report = _run("direct_entry")
        assert report.succeeded
        assert report.vulnerable
        assert report.findings[0].rule == "crypto-ecb"

    def test_secure_variant_not_flagged(self):
        _, report = _run("direct_entry", insecure=False)
        assert report.succeeded and not report.vulnerable

    def test_wrapper_chain_detected(self):
        _, report = _run("wrapper_chain")
        assert report.vulnerable

    def test_string_built_detected(self):
        _, report = _run("string_built")
        assert report.vulnerable

    def test_field_config_detected(self):
        _, report = _run("field_config")
        assert report.vulnerable

    def test_icc_explicit_detected(self):
        _, report = _run("icc_explicit")
        assert report.vulnerable

    def test_clinit_path_detected(self):
        _, report = _run("clinit_path")
        assert report.vulnerable

    def test_hierarchy_wrapped_sink_detected(self):
        # Amandroid resolves the app-class invocation up the hierarchy —
        # the case BackDroid's initial search misses (Sec. VI-C).
        _, report = _run("hierarchy_wrapped_sink")
        assert report.vulnerable


class TestDocumentedWeaknesses:
    def test_async_executor_missed(self):
        _, report = _run("async_executor")
        assert report.succeeded and not report.vulnerable

    def test_icc_implicit_detected_via_receiver_entry(self):
        # The registered receiver is an entry in its own right, so the
        # whole-app baseline reaches the sink even without implicit ICC
        # edges.
        _, report = _run("icc_implicit")
        assert report.succeeded and report.vulnerable

    def test_library_skipped_missed(self):
        generated, report = _run("library_skipped")
        assert report.succeeded and not report.vulnerable
        assert report.skipped_library_classes >= 1

    def test_unregistered_component_false_positive(self):
        generated, report = _run("unregistered_component")
        assert report.vulnerable  # the FP the paper documents
        assert not generated.truly_vulnerable

    def test_dead_code_not_flagged(self):
        _, report = _run("dead_code")
        assert not report.vulnerable

    def test_hazard_raises_occasional_error(self):
        _, report = _run("hazard_dangling")
        assert report.error is not None
        assert "Could not find procedure" in report.error
        assert not report.vulnerable

    def test_implicit_budget_drops_extra_asynctask_sites(self):
        budget = AmandroidConfig(implicit_flow_site_budget=1)
        patterns = tuple(
            PatternSpec("async_asynctask", insecure=True) for _ in range(3)
        )
        spec = AppSpec(package="com.t", seed=3, patterns=patterns, filler_classes=2)
        generated = generate_app(spec)
        report = AmandroidStyleAnalyzer(budget).analyze(generated.apk)
        assert report.succeeded
        assert report.dropped_implicit_sites >= 1
        assert len(report.findings) < 3

    def test_timeout_reported(self):
        spec = AppSpec(
            package="com.t", seed=5,
            patterns=(PatternSpec("direct_entry"),),
            filler_classes=120,
        )
        generated = generate_app(spec)
        config = AmandroidConfig(timeout_seconds=0.01)
        report = AmandroidStyleAnalyzer(config).analyze(generated.apk)
        assert report.timed_out
        assert not report.vulnerable


class TestFlowDroidCg:
    def test_generation_succeeds_and_counts(self):
        spec = AppSpec(package="com.t", seed=9,
                       patterns=(PatternSpec("direct_entry"),), filler_classes=5)
        generated = generate_app(spec)
        report = FlowDroidStyleCallGraphGenerator().generate(generated.apk)
        assert report.succeeded
        assert report.reachable_methods > 0
        assert report.edges > 0

    def test_geompta_costs_more_than_spark(self):
        spec = AppSpec(package="com.t", seed=9,
                       patterns=(PatternSpec("direct_entry"),), filler_classes=60)
        generated = generate_app(spec)
        geom = FlowDroidStyleCallGraphGenerator(
            FlowDroidConfig(callgraph_algorithm="geomPTA", timeout_seconds=None)
        ).generate(generated.apk)
        spark = FlowDroidStyleCallGraphGenerator(
            FlowDroidConfig(callgraph_algorithm="SPARK", timeout_seconds=None)
        ).generate(generated.apk)
        assert geom.generation_seconds > spark.generation_seconds

    def test_timeout_reported(self):
        spec = AppSpec(package="com.t", seed=9,
                       patterns=(PatternSpec("direct_entry"),), filler_classes=80)
        generated = generate_app(spec)
        report = FlowDroidStyleCallGraphGenerator(
            FlowDroidConfig(timeout_seconds=0.01)
        ).generate(generated.apk)
        assert report.timed_out
