"""Unit tests for the app generator and the corpora."""

import statistics

import pytest

from repro.workload.corpus import (
    TABLE1_APP_SIZES,
    benchmark_app_spec,
    benchmark_corpus,
    sample_year_corpus,
    year_size_distribution,
)
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PatternSpec


class TestGenerator:
    def test_deterministic(self):
        spec = AppSpec(package="com.d", seed=42,
                       patterns=(PatternSpec("direct_entry"),), filler_classes=3)
        first = generate_app(spec)
        second = generate_app(spec)
        assert first.apk.class_count() == second.apk.class_count()
        assert first.apk.disassembly.text == second.apk.disassembly.text
        assert first.truths == second.truths

    def test_different_seeds_differ(self):
        a = generate_app(AppSpec(package="com.d", seed=1, filler_classes=3))
        b = generate_app(AppSpec(package="com.d", seed=2, filler_classes=3))
        assert a.apk.disassembly.text != b.apk.disassembly.text

    def test_filler_reachable_from_launcher(self):
        spec = AppSpec(package="com.d", seed=1, filler_classes=4)
        generated = generate_app(spec)
        manifest = generated.apk.manifest
        assert manifest.is_registered("com.d.gen.LauncherActivity")
        from repro.baseline.callgraph import build_whole_app_callgraph

        graph = build_whole_app_callgraph(generated.apk)
        filler_methods = [
            m for m in graph.reachable if m.class_name.startswith("com.d.gen.Filler")
        ]
        assert len(filler_methods) >= spec.filler_classes

    def test_size_mb_derived_when_unset(self):
        generated = generate_app(AppSpec(package="com.d", seed=1, filler_classes=5))
        assert generated.apk.size_mb > 0

    def test_ground_truth_helpers(self):
        spec = AppSpec(
            package="com.d", seed=1,
            patterns=(
                PatternSpec("direct_entry", insecure=True),
                PatternSpec("hazard_dangling"),
            ),
            filler_classes=2,
        )
        generated = generate_app(spec)
        assert generated.truly_vulnerable
        assert generated.has_hazard
        assert generated.expected_backdroid_vulnerable()
        # Hazard masks every baseline detection.
        assert not generated.expected_amandroid_vulnerable()
        assert generated.sink_call_count() == 1


class TestYearCorpora:
    @pytest.mark.parametrize("year", sorted(TABLE1_APP_SIZES))
    def test_sampled_sizes_match_table1(self, year):
        """Sampled mean/median within 12% of the paper's Table I."""
        apps = sample_year_corpus(year, count=4000, seed=3)
        sizes = [a.size_mb for a in apps]
        average, median, _ = TABLE1_APP_SIZES[year]
        assert statistics.median(sizes) == pytest.approx(median, rel=0.12)
        assert statistics.fmean(sizes) == pytest.approx(average, rel=0.12)

    def test_installs_at_least_one_million(self):
        apps = sample_year_corpus(2018, count=100)
        assert all(a.installs >= 1_000_000 for a in apps)

    def test_distribution_params_monotone_growth(self):
        mu_2014, _ = year_size_distribution(2014)
        mu_2018, _ = year_size_distribution(2018)
        assert mu_2018 > mu_2014


class TestBenchmarkCorpus:
    def test_specs_deterministic(self):
        assert benchmark_app_spec(7) == benchmark_app_spec(7)

    def test_every_app_has_a_sink(self):
        corpus = benchmark_corpus(count=12, scale=0.1)
        assert all(g.sink_call_count() >= 1 for g in corpus)

    def test_scale_shrinks_bulk(self):
        small = benchmark_app_spec(0, scale=0.1)
        large = benchmark_app_spec(0, scale=1.0)
        assert small.filler_classes <= large.filler_classes
        assert small.patterns == large.patterns

    def test_sizes_follow_2018_distribution(self):
        specs = [benchmark_app_spec(i) for i in range(144)]
        sizes = sorted(s.size_mb for s in specs)
        median = statistics.median(sizes)
        # Paper: 41.5MB average / 36.2MB median for the 144 apps.
        assert 25 <= median <= 55
