"""Structured logging: a JSON formatter that carries trace context.

``backdroid serve --log-format json`` installs
:class:`JsonLogFormatter` on the ``backdroid`` logger tree.  Every
record becomes one JSON object per line with a fixed core schema —
``ts``, ``level``, ``logger``, ``message`` — plus ``trace_id``/
``span_id`` stamped from the *active* span (the tracing context
variable), so a job's log lines join its trace without any call-site
changes.  Explicit ``extra={"trace_id": ...}`` fields win over the
ambient span (used where a job finishes outside its dispatch scope).
"""

from __future__ import annotations

import json
import logging
from typing import Optional

from repro.telemetry.tracing import current_span

#: The root of the service's logger tree.
LOGGER_NAME = "backdroid"

#: ``LogRecord`` attributes that are plumbing, not payload: anything
#: else on a record (``extra=`` fields) is included in the JSON object.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record, trace-stamped when a span is active."""

    def format(self, record: logging.LogRecord) -> str:
        data = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = current_span()
        if span is not None and span.trace_id is not None:
            data["trace_id"] = span.trace_id
            data["span_id"] = span.span_id
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            data[key] = value
        if record.exc_info:
            data["exc"] = self.formatException(record.exc_info)
        return json.dumps(data, default=str, sort_keys=True)


def get_logger(area: Optional[str] = None) -> logging.Logger:
    """The service logger (or one of its ``backdroid.<area>`` children)."""
    name = f"{LOGGER_NAME}.{area}" if area else LOGGER_NAME
    return logging.getLogger(name)


def configure_logging(
    log_format: str = "text", level: int = logging.INFO
) -> logging.Logger:
    """Install one stream handler on the ``backdroid`` logger tree.

    ``log_format`` is ``"text"`` (conventional single-line records) or
    ``"json"`` (:class:`JsonLogFormatter`).  Idempotent: reconfiguring
    replaces the previously installed handler instead of stacking.
    """
    if log_format not in ("text", "json"):
        raise ValueError(
            f"log_format must be 'text' or 'json', got {log_format!r}"
        )
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler()
    if log_format == "json":
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)s %(name)s: %(message)s"
            )
        )
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger
