"""Result types of one BackDroid analysis run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.detectors import Finding
from repro.core.slicer import SinkCallSite
from repro.search.loops import LoopKind


@dataclass
class SinkRecord:
    """The per-sink outcome: slicing verdict, resolved facts, finding."""

    site: SinkCallSite
    reachable: bool
    cached: bool = False
    facts_repr: dict[int, str] = field(default_factory=dict)
    finding: Optional[Finding] = None
    ssg_size: int = 0
    entry_points: tuple[str, ...] = ()
    duration_seconds: float = 0.0


@dataclass
class AnalysisReport:
    """Everything one ``BackDroid.analyze`` call produced."""

    package: str
    records: list[SinkRecord] = field(default_factory=list)
    analysis_seconds: float = 0.0
    #: Sec. IV-F statistics.
    search_cache_rate: float = 0.0
    search_cache_lookups: int = 0
    search_cache_evictions: int = 0
    sink_cache_rate: float = 0.0
    loop_counts: dict[LoopKind, int] = field(default_factory=dict)
    #: Which search backend served the bytecode searches.
    search_backend: str = "linear"
    #: Per-backend query counters (see ``SearchBackend.describe``).
    backend_stats: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def findings(self) -> list[Finding]:
        return [r.finding for r in self.records if r.finding is not None]

    @property
    def vulnerable(self) -> bool:
        return bool(self.findings)

    @property
    def sink_count(self) -> int:
        return len(self.records)

    @property
    def reachable_sink_count(self) -> int:
        return sum(1 for r in self.records if r.reachable)

    def findings_by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]

    @property
    def detected_any_loop(self) -> bool:
        return any(self.loop_counts.values())

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """A human-readable per-app summary."""
        lines = [
            f"BackDroid report for {self.package}",
            f"  sinks analyzed : {self.sink_count} "
            f"({self.reachable_sink_count} reachable)",
            f"  analysis time  : {self.analysis_seconds:.3f}s",
            f"  search cache   : {self.search_cache_rate:.2%} of "
            f"{self.search_cache_lookups} commands",
            f"  sink cache     : {self.sink_cache_rate:.2%}",
            f"  search backend : {self.search_backend}",
        ]
        if self.loop_counts:
            rendered = ", ".join(
                f"{kind.value}={count}" for kind, count in self.loop_counts.items() if count
            )
            lines.append(f"  loops detected : {rendered or 'none'}")
        for record in self.records:
            status = "VULNERABLE" if record.finding else (
                "reachable" if record.reachable else "dead"
            )
            lines.append(
                f"  - {record.site.spec.description} in "
                f"{record.site.method.to_soot()} [{status}]"
            )
            for index, repr_text in sorted(record.facts_repr.items()):
                lines.append(f"      arg{index} = {repr_text}")
            if record.finding:
                lines.append(f"      {record.finding.detail}")
        return "\n".join(lines)
