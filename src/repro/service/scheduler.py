"""The store-aware two-lane scheduler.

The paper's pitch is per-query cost small enough to serve analyses on
demand; at service scale the remaining waste is *queueing*: a warm app
whose outcome (or index) is already in the artifact store costs
milliseconds, but in a FIFO pool it still waits behind cold apps that
cost seconds.  This scheduler probes the store at submit time
(:func:`repro.core.batch.probe_spec` — one tiny specmap read to resolve
the spec's content key, then one small manifest read plus shard
existence checks; never any app generation or shard deserialization)
and routes warm submissions to a small dedicated fast lane while cold
submissions get the main worker pool.  A *partial* probe (some of the
app's shards already published — typically by another app embedding
the same libraries) counts as warm: the analysis composes the present
shards and patches only the missing groups.
``benchmarks/bench_service_scheduler.py`` measures the effect: on a
mixed corpus, warm jobs' mean wait drops versus single-lane FIFO
dispatch.

The warm fast lane runs in-process (restores are mmap-backed reads; the
shared :class:`~repro.api.session.SessionCache` lives here), while the
cold lane can execute **out of process**: with
``cold_executor="process"`` every cold analysis ships to a
:class:`~repro.service.workers.ProcessLane` worker and only the
serialized outcome payload crosses back, so cold CPU work (disassembly,
index folds) never shares the service interpreter's GIL with warm
fetches.  The default ``cold_executor="thread"`` keeps everything
in-process — the embedding-friendly library mode and the baseline the
sustained-traffic benchmark compares against.  Execution itself is
:func:`repro.core.batch.analyze_spec` either way (the process lane runs
it through :mod:`repro.service.workers`' shared entry point), so
per-app isolation, store warm starts and outcome shapes are identical
to batch runs.  Duplicate in-flight submissions coalesce in the
:class:`~repro.service.jobs.JobQueue` — one analysis, every job
completed with the same payload.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.api.request import AnalysisRequest
from repro.api.session import SessionCache
from repro.core.backdroid import BackDroidConfig
from repro.core.batch import (
    _outcome_fingerprint,
    analyze_spec,
    level_is_warm,
    outcome_payload,
    probe_spec,
)
from repro.service.jobs import CANCELLED, CANCEL_DONE, CANCEL_PENDING, Job, JobQueue
from repro.service.workers import STALL_ENV_VAR, ProcessLane
from repro.telemetry import tracing
from repro.telemetry.logs import get_logger
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.quantiles import quantile
from repro.workload.generator import AppSpec, spec_fingerprint

#: How many recent depth observations each lane keeps for percentiles.
DEPTH_SAMPLE_WINDOW = 512

#: How many times a cold job is re-dispatched after its worker *dies*
#: (crash/OOM — never after an explicit cancel kill).  One retry rides
#: the already-forked replacement worker; a second death fails the job.
COLD_DIED_RETRIES = 1

_log = get_logger("scheduler")


@dataclass
class LaneStats:
    """One dispatch lane's counters (read via :meth:`as_dict`)."""

    name: str
    workers: int
    #: Where this lane's analyses execute: ``"in-process"`` (threads in
    #: the service interpreter) or ``"process"`` (worker processes).
    kind: str = "in-process"
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Jobs currently queued or running in this lane.
    depth: int = 0
    #: Analyses executing right now (bounded by ``workers``).
    busy: int = 0
    total_wait_seconds: float = 0.0
    #: Recent queue-depth observations, sampled at each submission, for
    #: the percentiles ``/v1/stats`` reports.
    depth_samples: deque = field(
        default_factory=lambda: deque(maxlen=DEPTH_SAMPLE_WINDOW),
        repr=False,
    )

    @property
    def mean_wait_seconds(self) -> float:
        finished = self.completed + self.failed
        return self.total_wait_seconds / finished if finished else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of this lane's workers currently executing."""
        return self.busy / self.workers if self.workers else 0.0

    def as_dict(self) -> dict:
        # The shared quantile helper reports ``None`` (JSON null) for
        # empty/one-sample windows instead of fabricating a 0.
        ordered = sorted(self.depth_samples)
        return {
            "name": self.name,
            "kind": self.kind,
            "workers": self.workers,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "depth": self.depth,
            "busy": self.busy,
            "utilization": self.utilization,
            "depth_percentiles": {
                "p50": quantile(ordered, 0.50),
                "p90": quantile(ordered, 0.90),
                "p99": quantile(ordered, 0.99),
            },
            "mean_wait_seconds": self.mean_wait_seconds,
        }


class StoreAwareScheduler:
    """Two-lane, store-probing dispatch over thread pools.

    ``workers`` sizes the main (cold) pool; ``fast_lane_workers`` sizes
    the warm lane.  A zero-sized fast lane (or no configured store)
    degrades to single-lane FIFO dispatch — the baseline the benchmark
    compares against.

    ``cold_executor`` picks where cold analyses execute: ``"thread"``
    (default) keeps them in-process, ``"process"`` forks a
    :class:`~repro.service.workers.ProcessLane` of ``workers`` worker
    processes and the main pool's threads become dispatchers — each
    blocks on one out-of-process analysis, so lane capacity is
    unchanged.  Process mode requires picklable work: a custom
    ``registry`` (arbitrary client callables) is rejected up front.
    """

    def __init__(
        self,
        config: Optional[BackDroidConfig] = None,
        workers: int = 4,
        fast_lane_workers: int = 1,
        max_finished_jobs: int = 256,
        session_cache_size: int = 4,
        registry=None,
        cold_executor: str = "thread",
        tracing_enabled: bool = True,
        enable_metrics: bool = True,
        node_id: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        if fast_lane_workers < 0:
            raise ValueError("fast_lane_workers must be >= 0")
        if session_cache_size < 0:
            raise ValueError("session_cache_size must be >= 0")
        if cold_executor not in ("thread", "process"):
            raise ValueError(
                "cold_executor must be 'thread' or 'process', "
                f"got {cold_executor!r}"
            )
        if cold_executor == "process" and registry is not None:
            raise ValueError(
                "cold_executor='process' cannot ship a custom registry "
                "(client detectors are arbitrary callables and may not "
                "pickle); use cold_executor='thread' or the built-in "
                "catalogue"
            )
        self.cold_executor = cold_executor
        #: Cluster identity (None on single-node serves).  Stamped on
        #: every job/result payload and, as a ``node`` const label, on
        #: every metric series, so per-node scrapes stay
        #: distinguishable once aggregated.
        self.node_id = node_id
        self.config = config if config is not None else BackDroidConfig()
        self.queue = JobQueue(max_finished=max_finished_jobs)
        #: Client sink specs/detectors served by every lane (None = the
        #: built-in catalogue).
        self.registry = registry
        #: Warm per-app sessions shared across jobs — differently-
        #: targeted submissions of one app reuse a single generated APK
        #: and built index.
        self.sessions = (
            SessionCache(max_sessions=session_cache_size)
            if session_cache_size > 0
            else None
        )
        self._store = self.config.artifact_store()
        self._config_fingerprint = (
            _outcome_fingerprint(self.config, self.registry)
            if self._store is not None
            else None
        )
        # The main pool's threads either run cold analyses themselves
        # (thread mode) or act as dispatchers, each blocking on one
        # ProcessLane worker (process mode) — either way its size is
        # the cold lane's concurrency.
        self._main = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="backdroid-main"
        )
        self._fast = (
            ThreadPoolExecutor(
                max_workers=fast_lane_workers,
                thread_name_prefix="backdroid-fast",
            )
            if fast_lane_workers > 0
            else None
        )
        self._cold = (
            ProcessLane(workers) if cold_executor == "process" else None
        )
        self.lanes = {
            "fast": LaneStats("fast", fast_lane_workers, kind="in-process"),
            "main": LaneStats(
                "main",
                workers,
                kind="process" if self._cold is not None else "in-process",
            ),
        }
        #: Analyses actually executed (dedup-coalesced jobs share one).
        self.analyses_run = 0
        #: Submissions the store probe classified warm (lane-independent,
        #: so a FIFO-degraded scheduler still reports its warm traffic).
        self.warm_submissions = 0
        #: The subset of warm submissions that were *partial* hits —
        #: only some shards present, the rest patched at analysis time
        #: (cross-app dedup warming an app never seen before).
        self.warm_partial_submissions = 0
        self._lock = threading.Lock()
        self._closed = False
        #: The scheduler's own tracer: library spans opened during a
        #: job's execution land here via the ambient-span context var.
        self.tracer = tracing.Tracer(enabled=tracing_enabled)
        #: In-flight span handles per primary job id:
        #: ``job_id -> (root_span, queue_span)``.
        self._job_spans: dict[str, tuple] = {}
        #: Recently served content keys (newest last, bounded): the
        #: cluster gossip payload that lets a front end route repeat
        #: submissions of an app to the node already holding its
        #: session/shards.
        self._served_keys: "OrderedDict[str, float]" = OrderedDict()
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry(
                const_labels={"node": node_id} if node_id else None
            )
            if enable_metrics
            else None
        )
        if self.metrics is not None:
            self._init_metrics()

    # ------------------------------------------------------------------
    def _init_metrics(self) -> None:
        """Register the scheduler's named instruments (one registry per
        scheduler; existing scattered stats export via callback gauges,
        so their hot paths are untouched)."""
        m = self.metrics
        self._m_submitted = m.counter(
            "backdroid_jobs_submitted_total",
            "Jobs submitted, by dispatch lane.",
            ("lane",),
        )
        self._m_completed = m.counter(
            "backdroid_jobs_completed_total",
            "Jobs that finished successfully, by lane.",
            ("lane",),
        )
        self._m_failed = m.counter(
            "backdroid_jobs_failed_total",
            "Jobs that finished with an error, by lane.",
            ("lane",),
        )
        self._m_cancelled = m.counter(
            "backdroid_jobs_cancelled_total",
            "Jobs cancelled by clients, by lane.",
            ("lane",),
        )
        self._m_analyses = m.counter(
            "backdroid_analyses_total",
            "Analyses actually executed (coalesced jobs share one).",
        )
        self._m_warm = m.counter(
            "backdroid_warm_submissions_total",
            "Submissions the store probe classified warm.",
        )
        self._m_warm_partial = m.counter(
            "backdroid_warm_partial_submissions_total",
            "Warm submissions that were partial shard hits.",
        )
        self._m_probe = m.counter(
            "backdroid_store_probe_total",
            "Store probes at submit time, by hit level.",
            ("level",),
        )
        self._m_wait = m.histogram(
            "backdroid_job_wait_seconds",
            "Queue wait (submission to execution start), by lane.",
            ("lane",),
        )
        self._m_service = m.histogram(
            "backdroid_job_service_seconds",
            "Execution time (start to finish), by lane.",
            ("lane",),
        )
        self._m_retries = m.counter(
            "backdroid_cold_worker_retries_total",
            "Cold dispatches retried after a worker death.",
        )
        depth = m.gauge(
            "backdroid_lane_depth",
            "Jobs currently queued or running, by lane.",
            ("lane",),
        )
        busy = m.gauge(
            "backdroid_lane_busy",
            "Analyses executing right now, by lane.",
            ("lane",),
        )
        for name, lane_stats in self.lanes.items():
            depth.set_function(
                lambda s=lane_stats: s.depth, lane=name
            )
            busy.set_function(
                lambda s=lane_stats: s.busy, lane=name
            )
        m.gauge(
            "backdroid_dedup_hits",
            "Submissions coalesced onto an in-flight analysis.",
        ).set_function(lambda: self.queue.dedup_hits)
        m.gauge(
            "backdroid_cold_worker_restarts",
            "Cold worker processes restarted after kills/crashes.",
        ).set_function(
            lambda: (
                self._cold.workers_restarted if self._cold is not None else 0
            )
        )
        if self._store is not None:
            store_gauge = m.gauge(
                "backdroid_store_counter",
                "Live artifact-store counters (see the label for which).",
                ("counter",),
            )
            stats = self._store.stats
            for counter_name in stats.as_dict():
                store_gauge.set_function(
                    lambda s=stats, n=counter_name: getattr(s, n),
                    counter=counter_name,
                )

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: AppSpec,
        request: Optional[AnalysisRequest] = None,
        parent_trace: Optional[dict] = None,
    ) -> Job:
        """Probe, route, enqueue; returns the job record immediately.

        ``request`` overrides the service's default targets/knobs for
        this job only.  It is folded into the dedup key, so two
        submissions of one app coalesce only when their requests match
        — differently-targeted jobs run separately (but still share the
        warm per-app session underneath).

        ``parent_trace`` is a serialized ``{"trace_id", "span_id"}``
        context (a cluster front end's dispatch span): the job's root
        span parents on it, so one trace follows a job across
        processes.
        """
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        if request is None:
            effective = self.config
            fingerprint = self._config_fingerprint
            suffix = ""
        else:
            effective = request.to_config(self.config)
            fingerprint = (
                _outcome_fingerprint(effective, self.registry)
                if self._store is not None
                else None
            )
            suffix = f"#{request.fingerprint()}"
        root_span = self.tracer.start_span(
            "job", parent=parent_trace, attrs={"package": spec.package}
        )
        probe_span = self.tracer.start_span("store.probe", parent=root_span)
        key, level = probe_spec(spec, self._store, fingerprint)
        warm = level_is_warm(level, effective)
        probe_span.set_attrs(level=level, warm=warm)
        probe_span.end()
        lane = "fast" if warm and self._fast is not None else "main"
        # The fingerprint surrogate always rides along as a dedup alias:
        # analyze_spec teaches the store the spec -> sha mapping mid-run,
        # so a duplicate of an in-flight cold submission would otherwise
        # resolve to the sha and miss the surrogate-keyed primary.
        aliases = (
            f"{key}{suffix}",
            f"spec:{spec_fingerprint(spec)}{suffix}",
        )
        job, is_primary = self.queue.submit(
            spec,
            key=f"{key}{suffix}",
            lane=lane,
            warm=warm,
            aliases=aliases,
            request=request,
            node_id=self.node_id,
        )
        self._record_served_key(key)
        with self._lock:
            stats = self.lanes[job.lane]
            stats.submitted += 1
            if warm:
                self.warm_submissions += 1
                if level == "partial":
                    self.warm_partial_submissions += 1
            if is_primary:
                stats.depth += 1
            stats.depth_samples.append(stats.depth)
        if self.metrics is not None:
            self._m_submitted.inc(lane=job.lane)
            self._m_probe.inc(level=str(level))
            if warm:
                self._m_warm.inc()
                if level == "partial":
                    self._m_warm_partial.inc()
        if root_span:
            self.queue.set_trace_id(job.id, root_span.trace_id)
            root_span.set_attrs(job_id=job.id, lane=job.lane, warm=warm)
            if is_primary:
                queue_span = self.tracer.start_span(
                    "queue", parent=root_span, attrs={"lane": job.lane}
                )
                with self._lock:
                    self._job_spans[job.id] = (root_span, queue_span)
            else:
                # A coalesced follower never executes: its short trace
                # records the probe and points at the primary's trace.
                primary = self.queue.get(job.coalesced_into)
                root_span.set_attrs(
                    coalesced_into=job.coalesced_into,
                    primary_trace_id=(
                        primary.trace_id if primary is not None else None
                    ),
                )
                root_span.end()
                self.queue.attach_trace(
                    job.id, self.tracer.collect(root_span.trace_id)
                )
        if is_primary:
            pool = self._fast if job.lane == "fast" else self._main
            try:
                pool.submit(self._run, job.id, job.lane)
            except RuntimeError:
                # Lost the race against shutdown(): the executor already
                # rejected new futures.  Fail the job (and any follower
                # registered in the same instant) so nothing is left
                # queued forever, then surface the closed state.
                self._discard_job_spans(job.id, state="failed")
                members = self.queue.finish(
                    job.id, error="scheduler shut down before dispatch"
                )
                with self._lock:
                    stats = self.lanes[job.lane]
                    stats.depth = max(0, stats.depth - 1)
                    stats.failed += len(members)
                raise RuntimeError("scheduler is shut down") from None
        return job

    # ------------------------------------------------------------------
    _SERVED_KEYS_BOUND = 512

    def _record_served_key(self, key: str) -> None:
        """Remember a content key this node served (bounded, LRU)."""
        with self._lock:
            self._served_keys.pop(key, None)
            self._served_keys[key] = time.time()
            while len(self._served_keys) > self._SERVED_KEYS_BOUND:
                self._served_keys.popitem(last=False)

    def warm_keys(self, limit: int = 128) -> list[str]:
        """The newest content keys this node served (newest first) —
        the shard-availability payload gossiped via the store's node
        manifests."""
        with self._lock:
            keys = list(self._served_keys)
        return keys[::-1][:limit]

    # ------------------------------------------------------------------
    def _pop_job_spans(self, job_id: str) -> tuple:
        with self._lock:
            return self._job_spans.pop(job_id, (None, None))

    def _discard_job_spans(self, job_id: str, state: str) -> None:
        """Close a job's open spans without serving them (cancelled or
        shutdown-failed before a worker picked the job up)."""
        root_span, queue_span = self._pop_job_spans(job_id)
        if root_span is None:
            return
        if queue_span is not None:
            queue_span.end()
        root_span.set_attr("state", state)
        root_span.end()
        self.queue.attach_trace(
            job_id, self.tracer.collect(root_span.trace_id)
        )

    def _run(self, job_id: str, lane: str) -> None:
        job = self.queue.get(job_id)
        if job is None:
            # Cancelled (or shutdown-failed) *and* already evicted from
            # retention before a worker got to it.  The job record is
            # gone but the lane slot it held is not — release it via the
            # lane captured at submit time.
            self._discard_job_spans(job_id, state="evicted")
            with self._lock:
                stats = self.lanes[lane]
                stats.depth = max(0, stats.depth - 1)
            return
        if job.terminal:
            # Cancelled while queued: never analyze, just release the
            # lane slot the dead job still held.
            self._discard_job_spans(job_id, state=job.state)
            with self._lock:
                stats = self.lanes[job.lane]
                stats.depth = max(0, stats.depth - 1)
            return
        self.queue.mark_running(job_id)
        root_span, queue_span = self._pop_job_spans(job_id)
        if queue_span is not None:
            queue_span.set_attr("wait_seconds", job.wait_seconds)
            queue_span.end()
        with self._lock:
            self.analyses_run += 1
            self.lanes[job.lane].busy += 1
        if self.metrics is not None:
            self._m_analyses.inc()
        service_start = time.perf_counter()
        try:
            if job.lane == "main" and self._cold is not None:
                payload, error = self._execute_cold(job, root_span)
            else:
                with self.tracer.span(
                    "dispatch",
                    parent=root_span,
                    attrs={"executor": "in-process", "attempt": 1},
                ):
                    payload, error = self._execute_in_process(job)
        finally:
            with self._lock:
                stats = self.lanes[job.lane]
                stats.busy = max(0, stats.busy - 1)
        service_seconds = time.perf_counter() - service_start
        if root_span:
            root_span.set_attr(
                "state", "failed" if error is not None else "done"
            )
            root_span.end()
            self.queue.attach_trace(
                job_id, self.tracer.collect(root_span.trace_id)
            )
        if payload is not None and self.node_id is not None:
            # Stamp on a copy: the store-bound outcome payload schema
            # rejects unknown fields, so the node id rides only the
            # served job result.
            payload = dict(payload)
            payload["node_id"] = self.node_id
        members = self.queue.finish(job_id, result=payload, error=error)
        ok = error is None
        if error is not None:
            _log.warning(
                "job %s failed: %s", job_id, error,
                extra={"trace_id": job.trace_id},
            )
        with self._lock:
            stats = self.lanes[job.lane]
            stats.depth = max(0, stats.depth - 1)
            # Followers count too: every member was a submission and
            # reached a terminal state with this payload.
            for member in members:
                if member.state == CANCELLED:
                    stats.cancelled += 1
                    continue  # a discarded result is not a wait served
                if ok:
                    stats.completed += 1
                else:
                    stats.failed += 1
                if member.wait_seconds is not None:
                    stats.total_wait_seconds += member.wait_seconds
        if self.metrics is not None:
            self._m_service.observe(service_seconds, lane=job.lane)
            for member in members:
                if member.state == CANCELLED:
                    self._m_cancelled.inc(lane=job.lane)
                    continue
                if ok:
                    self._m_completed.inc(lane=job.lane)
                else:
                    self._m_failed.inc(lane=job.lane)
                if member.wait_seconds is not None:
                    self._m_wait.observe(
                        member.wait_seconds, lane=job.lane
                    )

    def _execute_in_process(
        self, job: Job
    ) -> tuple[Optional[dict], Optional[str]]:
        """Run one analysis in the service interpreter (warm path)."""
        self.queue.record_worker(job.id, os.getpid())
        outcome = analyze_spec(  # never raises
            job.spec,
            self.config,
            request=job.request,
            sessions=self.sessions,
            registry=self.registry,
        )
        outcome = dataclasses.replace(outcome, lane=job.lane)
        with tracing.span("report.render"):
            payload = outcome_payload(outcome)
        return payload, None if outcome.ok else outcome.error

    def _execute_cold(
        self, job: Job, root_span=None
    ) -> tuple[Optional[dict], Optional[str]]:
        """Ship one analysis to a worker process and await its payload.

        The stall fault-injection knob is read *here*, in the parent at
        dispatch time, and rides the task — long-lived workers forked at
        construction must not depend on their fork-time environment.

        A worker that *dies* mid-analysis (crash/OOM — not an explicit
        cancel kill) gets :data:`COLD_DIED_RETRIES` re-dispatches onto
        the replacement the lane already forked; each attempt opens its
        own ``dispatch`` span under the same trace.
        """
        attempts = 1 + COLD_DIED_RETRIES
        result = None
        for attempt in range(1, attempts + 1):
            stall = float(os.environ.get(STALL_ENV_VAR) or 0.0)
            dispatch_span = self.tracer.start_span(
                "dispatch",
                parent=root_span,
                attrs={"executor": "process", "attempt": attempt},
            )
            result = self._cold.execute(
                job.id,
                job.spec,
                self.config,
                job.request,
                stall_seconds=stall,
                trace_ctx=dispatch_span.context(),
            )
            self.queue.record_worker(job.id, result.pid)
            if result.spans:
                self.tracer.attach(dispatch_span.trace_id, result.spans)
            dispatch_span.set_attrs(
                worker_pid=result.pid,
                killed=result.killed,
                died=result.died,
            )
            dispatch_span.end()
            if result.died and attempt < attempts:
                _log.warning(
                    "cold worker (pid %s) died running job %s; retrying "
                    "on the replacement (attempt %d/%d)",
                    result.pid, job.id, attempt + 1, attempts,
                    extra={"trace_id": job.trace_id},
                )
                if self.metrics is not None:
                    self._m_retries.inc()
                continue
            break
        if result.payload is not None:
            payload = dict(result.payload)
            payload["lane"] = job.lane
            return payload, payload.get("error")
        if result.killed:
            # The worker was terminated by a cancel; the queue is in
            # ``cancelling`` and finish() discards whatever we pass.
            return None, "cancelled by client"
        return None, (
            f"analysis worker died (pid {result.pid}); "
            "a replacement worker was started"
        )

    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> tuple[Optional[Job], str]:
        """Cancel a job (see :meth:`JobQueue.cancel` for dispositions).

        Jobs cancelled before running are counted per lane; a running
        job's ``cancelled`` tally lands when its worker completes.  A
        running *out-of-process* cold job is actually interruptible:
        its worker process is terminated (and replaced), so the
        terminal ``cancelled`` state arrives without waiting for the
        analysis to finish.
        """
        job, disposition = self.queue.cancel(job_id)
        if disposition == CANCEL_DONE and job is not None:
            with self._lock:
                self.lanes[job.lane].cancelled += 1
            if self.metrics is not None:
                self._m_cancelled.inc(lane=job.lane)
        elif (
            disposition == CANCEL_PENDING
            and job is not None
            and job.lane == "main"
            and self._cold is not None
        ):
            self._cold.kill(job.id)
        return job, disposition

    # ------------------------------------------------------------------
    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        return self.queue.wait(job_id, timeout=timeout)

    def stats(self) -> dict:
        """Lanes, job counts, warm-hit rate and the store's counters."""
        jobs = self.queue.counts()
        with self._lock:
            lanes = {name: lane.as_dict() for name, lane in self.lanes.items()}
            submitted = sum(lane.submitted for lane in self.lanes.values())
            warm = self.warm_submissions
            payload = {
                "node_id": self.node_id,
                "lanes": lanes,
                "jobs": jobs,
                "analyses_run": self.analyses_run,
                "submitted": submitted,
                "warm_hit_rate": warm / submitted if submitted else 0.0,
                "warm_partial_submissions": self.warm_partial_submissions,
                "cold": {
                    "executor": self.cold_executor,
                    "worker_pids": (
                        self._cold.pids() if self._cold is not None else []
                    ),
                    "workers_restarted": (
                        self._cold.workers_restarted
                        if self._cold is not None
                        else 0
                    ),
                },
                "store": (
                    self._store.stats.as_dict()
                    if self._store is not None
                    else None
                ),
                "sessions": (
                    self.sessions.describe()
                    if self.sessions is not None
                    else None
                ),
            }
        # Embedded for backward-compatible JSON scraping; the same
        # instruments serve ``GET /metrics`` as Prometheus text.
        payload["metrics"] = (
            self.metrics.as_dict() if self.metrics is not None else None
        )
        return payload

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; with ``wait``, drain every queued job."""
        self._closed = True
        if not wait and self._cold is not None:
            # Terminate worker processes first: dispatchers blocked on a
            # worker pipe observe the death immediately instead of
            # waiting out whatever analysis was in flight.
            self._cold.shutdown(wait=False)
        self._main.shutdown(wait=wait)
        if self._fast is not None:
            self._fast.shutdown(wait=wait)
        if wait and self._cold is not None:
            # Dispatchers are drained, so every worker is idle and
            # exits on the shutdown signal.
            self._cold.shutdown(wait=True)

    def __enter__(self) -> "StoreAwareScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
