"""Ablations of the design choices DESIGN.md calls out.

Not a paper table — these quantify the individual mechanisms:

* search-command caching on/off (Sec. IV-F);
* sink-API-call caching on/off (Sec. IV-F);
* the class-hierarchy initial-search fix for the two Sec. VI-C FNs;
* geomPTA vs SPARK call-graph cost (Sec. II-C).
"""

import time

from benchmarks.conftest import emit_table, render_table
from repro.baseline import FlowDroidConfig, FlowDroidStyleCallGraphGenerator
from repro.core import BackDroid, BackDroidConfig
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PatternSpec


def _timed_analysis(apk_builder, config) -> tuple[float, object]:
    generated = apk_builder()
    apk = generated.apk
    started = time.perf_counter()
    report = BackDroid(config).analyze(apk)
    return time.perf_counter() - started, report


def _cache_app():
    # Many ICC sinks over a large text: every resolution re-runs the
    # expensive ``startService`` regex search unless the command cache
    # serves it.
    patterns = tuple(PatternSpec("icc_explicit", insecure=(i % 2 == 0))
                     for i in range(12)) + tuple(
        PatternSpec("wrapper_chain") for _ in range(4)
    )
    return generate_app(
        AppSpec(package="com.abl.cache", seed=5, patterns=patterns,
                filler_classes=150)
    )


def _sink_cache_app():
    patterns = tuple(PatternSpec("dead_code") for _ in range(10))
    return generate_app(
        AppSpec(package="com.abl.sink", seed=6, patterns=patterns,
                filler_classes=20)
    )


def _hierarchy_app():
    return generate_app(
        AppSpec(package="com.abl.hier", seed=7,
                patterns=(PatternSpec("hierarchy_wrapped_sink", insecure=True),),
                filler_classes=4)
    )


def _run_all():
    results = {}
    on, rep_cache = _timed_analysis(
        _cache_app, BackDroidConfig(enable_search_cache=True)
    )
    off, _ = _timed_analysis(_cache_app, BackDroidConfig(enable_search_cache=False))
    # Wall-time deltas are within noise on this substrate (Python regex
    # scans are fast); the deterministic effect is the avoided searches.
    avoided = int(rep_cache.search_cache_rate * rep_cache.search_cache_lookups)
    results["search_cache"] = (on, off, rep_cache.search_cache_rate, avoided)

    s_on, rep_on = _timed_analysis(
        _sink_cache_app, BackDroidConfig(enable_sink_cache=True)
    )
    s_off, rep_off = _timed_analysis(
        _sink_cache_app, BackDroidConfig(enable_sink_cache=False)
    )
    cached_sinks = sum(1 for r in rep_on.records if r.cached)
    results["sink_cache"] = (s_on, s_off, cached_sinks, rep_on.sink_count)

    _, rep_default = _timed_analysis(
        _hierarchy_app, BackDroidConfig(sink_rules=("ssl-verifier",))
    )
    _, rep_fixed = _timed_analysis(
        _hierarchy_app,
        BackDroidConfig(sink_rules=("ssl-verifier",),
                        check_class_hierarchy_in_initial_search=True),
    )
    results["hierarchy"] = (rep_default.vulnerable, rep_fixed.vulnerable)

    heavy = generate_app(
        AppSpec(package="com.abl.cg", seed=8,
                patterns=(PatternSpec("direct_entry"),), filler_classes=80)
    )
    geom = FlowDroidStyleCallGraphGenerator(
        FlowDroidConfig(callgraph_algorithm="geomPTA", timeout_seconds=None)
    ).generate(heavy.apk)
    spark = FlowDroidStyleCallGraphGenerator(
        FlowDroidConfig(callgraph_algorithm="SPARK", timeout_seconds=None)
    ).generate(heavy.apk)
    results["cg_algo"] = (geom.generation_seconds, spark.generation_seconds)
    return results


def test_ablations(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    cache_on, cache_off, cache_rate, avoided = results["search_cache"]
    s_on, s_off, cached_sinks, total_sinks = results["sink_cache"]
    fn_default, fn_fixed = results["hierarchy"]
    geom_s, spark_s = results["cg_algo"]

    table = render_table(
        "Ablations",
        ["Mechanism", "With", "Without", "Effect"],
        [
            ["search-command cache", f"{cache_on:.3f}s", f"{cache_off:.3f}s",
             f"{cache_rate:.0%} of commands cached ({avoided} searches avoided)"],
            ["sink-API-call cache", f"{s_on:.3f}s", f"{s_off:.3f}s",
             f"{cached_sinks}/{total_sinks} sinks served from cache"],
            ["class-hierarchy initial search",
             "detected" if fn_fixed else "missed",
             "detected" if fn_default else "missed (paper FN)",
             "fixes the 2 Sec. VI-C FNs"],
            ["geomPTA vs SPARK CG", f"{geom_s:.3f}s", f"{spark_s:.3f}s",
             f"geomPTA {geom_s / max(spark_s, 1e-9):.2f}x costlier"],
        ],
    )
    emit_table("ablations", table)

    assert fn_fixed and not fn_default
    assert cached_sinks > 0
    assert avoided > 0, "repeated commands must be served from cache"
    assert geom_s > spark_s
