#!/usr/bin/env python3
"""Quickstart: author a tiny app and vet it with BackDroid.

Builds a two-class app with the fluent DSL — a registered Activity whose
``onCreate`` encrypts with an ECB-mode cipher — and runs the full
targeted analysis: initial sink search, backward slicing into an SSG,
forward constant propagation, and rule evaluation.

Run:  python examples/quickstart.py
"""

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.core import BackDroid, BackDroidConfig
from repro.dex.builder import AppBuilder


def build_demo_apk() -> Apk:
    app = AppBuilder()

    helper = app.new_class("com.example.CryptoHelper")
    encrypt = helper.method("encrypt", params=["java.lang.String"], static=True)
    transformation = encrypt.param(0)
    encrypt.invoke_static(
        "javax.crypto.Cipher",
        "getInstance",
        args=[transformation],
        params=["java.lang.String"],
        returns="javax.crypto.Cipher",
    )
    encrypt.return_void()

    main = app.new_class("com.example.MainActivity", superclass="android.app.Activity")
    main.default_constructor()
    on_create = main.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    mode = on_create.const_string("AES/ECB/PKCS5Padding")
    on_create.invoke_static(
        "com.example.CryptoHelper", "encrypt", args=[mode],
        params=["java.lang.String"],
    )
    on_create.return_void()

    manifest = Manifest(package="com.example")
    manifest.register(
        "com.example.MainActivity",
        ComponentKind.ACTIVITY,
        exported=True,
        actions=["android.intent.action.MAIN"],
    )
    return Apk(package="com.example", classes=app.build(), manifest=manifest)


def main() -> None:
    apk = build_demo_apk()
    print(f"analyzing {apk.package}: {apk.class_count()} classes, "
          f"{apk.method_count()} methods\n")

    driver = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb", "ssl-verifier")))
    report = driver.analyze(apk)

    print(report.to_text())
    print()
    if report.vulnerable:
        print("verdict: VULNERABLE — the ECB transformation reaches "
              "Cipher.getInstance from a registered entry point.")
    else:
        print("verdict: clean")


if __name__ == "__main__":
    main()
