"""Modeled Java/Android API semantics (Sec. V-B).

"We mimic arithmetic operations and model Android/Java APIs to handle two
complicated expressions, BinopExpr and InvokeExpr."  The forward analysis
consults this registry whenever an SSG node invokes a framework API: the
model computes the call's result fact (and, for mutating APIs such as
``StringBuilder.append``, the updated receiver fact).

A companion table resolves well-known framework *constants* — most
importantly ``SSLSocketFactory.ALLOW_ALL_HOSTNAME_VERIFIER``, whose
presence at a ``setHostnameVerifier`` sink is the SSL misconfiguration
the evaluation hunts for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.values import (
    ArrayObjFact,
    ConstFact,
    Fact,
    NewObjFact,
    UnknownFact,
    merge_facts,
)
from repro.dex.types import FieldSignature, MethodSignature

#: Sentinel strings for the SSL verifier constants.
ALLOW_ALL_VERIFIER = "ALLOW_ALL_HOSTNAME_VERIFIER"
BROWSER_COMPATIBLE_VERIFIER = "BROWSER_COMPATIBLE_HOSTNAME_VERIFIER"
STRICT_VERIFIER = "STRICT_HOSTNAME_VERIFIER"

_SSL_FACTORY = "org.apache.http.conn.ssl.SSLSocketFactory"
_X509 = "org.apache.http.conn.ssl.X509HostnameVerifier"

#: Framework static fields with well-known values.
FRAMEWORK_CONSTANT_FACTS: dict[FieldSignature, Fact] = {
    FieldSignature(_SSL_FACTORY, ALLOW_ALL_VERIFIER, _X509): ConstFact(ALLOW_ALL_VERIFIER),
    FieldSignature(_SSL_FACTORY, BROWSER_COMPATIBLE_VERIFIER, _X509): ConstFact(
        BROWSER_COMPATIBLE_VERIFIER
    ),
    FieldSignature(_SSL_FACTORY, STRICT_VERIFIER, _X509): ConstFact(STRICT_VERIFIER),
}


@dataclass
class ApiCall:
    """The evaluated operands of one framework API invocation."""

    method: MethodSignature
    base_fact: Optional[Fact] = None
    arg_facts: list[Fact] = field(default_factory=list)

    def arg(self, index: int) -> Fact:
        if index < len(self.arg_facts):
            return self.arg_facts[index]
        return UnknownFact(f"missing arg {index}")


@dataclass
class ApiResult:
    """A model's outcome: the call result and/or a receiver update."""

    result: Optional[Fact] = None
    base_update: Optional[Fact] = None


ApiModel = Callable[[ApiCall], ApiResult]

_BUILDER_MEMBER = "__string__"


def _single_const(fact: Fact):
    values = list(fact.possible_consts())
    return values[0] if len(values) == 1 else None


def _as_text(fact: Fact) -> Optional[str]:
    value = _single_const(fact)
    if value is None and not isinstance(value, str):
        # null renders as "null" in Java string contexts.
        if isinstance(fact, ConstFact) and fact.value is None:
            return "null"
        return None
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


# ----------------------------------------------------------------------
# StringBuilder
# ----------------------------------------------------------------------


def _sb_init(call: ApiCall) -> ApiResult:
    seed = ""
    if call.arg_facts:
        text = _as_text(call.arg(0))
        if text is None:
            return ApiResult(
                base_update=NewObjFact.make(
                    "java.lang.StringBuilder", {_BUILDER_MEMBER: UnknownFact("seed")}
                )
            )
        seed = text
    return ApiResult(
        base_update=NewObjFact.make(
            "java.lang.StringBuilder", {_BUILDER_MEMBER: ConstFact(seed)}
        )
    )


def _sb_append(call: ApiCall) -> ApiResult:
    base = call.base_fact
    if not isinstance(base, NewObjFact):
        return ApiResult(result=UnknownFact("append on unknown builder"))
    current = base.member(_BUILDER_MEMBER)
    left = _as_text(current) if current is not None else None
    right = _as_text(call.arg(0))
    if left is None or right is None:
        updated = base.with_member(_BUILDER_MEMBER, UnknownFact("unresolved append"))
    else:
        updated = base.with_member(_BUILDER_MEMBER, ConstFact(left + right))
    return ApiResult(result=updated, base_update=updated)


def _sb_to_string(call: ApiCall) -> ApiResult:
    base = call.base_fact
    if isinstance(base, NewObjFact):
        member = base.member(_BUILDER_MEMBER)
        if member is not None:
            return ApiResult(result=member)
    return ApiResult(result=UnknownFact("toString on unknown builder"))


# ----------------------------------------------------------------------
# String / Integer / TextUtils
# ----------------------------------------------------------------------


def _string_value_of(call: ApiCall) -> ApiResult:
    text = _as_text(call.arg(0))
    return ApiResult(result=ConstFact(text) if text is not None else UnknownFact("valueOf"))


def _string_concat(call: ApiCall) -> ApiResult:
    left = _as_text(call.base_fact) if call.base_fact is not None else None
    right = _as_text(call.arg(0))
    if left is None or right is None:
        return ApiResult(result=UnknownFact("concat"))
    return ApiResult(result=ConstFact(left + right))


def _string_transform(transform: Callable[[str], str]) -> ApiModel:
    def model(call: ApiCall) -> ApiResult:
        text = _as_text(call.base_fact) if call.base_fact is not None else None
        if text is None:
            return ApiResult(result=UnknownFact("string transform"))
        return ApiResult(result=ConstFact(transform(text)))

    return model


def _string_format(call: ApiCall) -> ApiResult:
    fmt = _as_text(call.arg(0))
    if fmt is not None and "%" not in fmt:
        return ApiResult(result=ConstFact(fmt))
    return ApiResult(result=UnknownFact("String.format"))


def _integer_parse(call: ApiCall) -> ApiResult:
    text = _as_text(call.arg(0))
    if text is None:
        return ApiResult(result=UnknownFact("parseInt"))
    try:
        return ApiResult(result=ConstFact(int(text)))
    except ValueError:
        return ApiResult(result=UnknownFact("parseInt of non-number"))


def _integer_to_string(call: ApiCall) -> ApiResult:
    value = _single_const(call.arg(0))
    if isinstance(value, int):
        return ApiResult(result=ConstFact(str(value)))
    return ApiResult(result=UnknownFact("Integer.toString"))


def _string_substring(call: ApiCall) -> ApiResult:
    text = _as_text(call.base_fact) if call.base_fact is not None else None
    start = _single_const(call.arg(0))
    if text is None or not isinstance(start, int) or not 0 <= start <= len(text):
        return ApiResult(result=UnknownFact("substring"))
    if len(call.arg_facts) >= 2:
        end = _single_const(call.arg(1))
        if not isinstance(end, int) or not start <= end <= len(text):
            return ApiResult(result=UnknownFact("substring"))
        return ApiResult(result=ConstFact(text[start:end]))
    return ApiResult(result=ConstFact(text[start:]))


def _string_replace(call: ApiCall) -> ApiResult:
    text = _as_text(call.base_fact) if call.base_fact is not None else None
    old = _as_text(call.arg(0))
    new = _as_text(call.arg(1))
    if text is None or old is None or new is None:
        return ApiResult(result=UnknownFact("replace"))
    return ApiResult(result=ConstFact(text.replace(old, new)))


def _text_utils_is_empty(call: ApiCall) -> ApiResult:
    value = _single_const(call.arg(0))
    if isinstance(value, str):
        return ApiResult(result=ConstFact(len(value) == 0))
    if isinstance(call.arg(0), ConstFact) and call.arg(0).value is None:
        return ApiResult(result=ConstFact(True))
    return ApiResult(result=UnknownFact("TextUtils.isEmpty"))


# ----------------------------------------------------------------------
# Factories and misc
# ----------------------------------------------------------------------


def _new_obj(class_name: str) -> ApiModel:
    def model(call: ApiCall) -> ApiResult:
        return ApiResult(result=NewObjFact.make(class_name))

    return model


def _identity_arg0(call: ApiCall) -> ApiResult:
    return ApiResult(result=call.arg(0))


# ----------------------------------------------------------------------
# Intent extras (ICC dataflow)
# ----------------------------------------------------------------------


def _intent_put_extra(call: ApiCall) -> ApiResult:
    """``intent.putExtra(key, value)`` — capture the extra as a member."""
    base = call.base_fact
    if not isinstance(base, NewObjFact):
        base = NewObjFact.make("android.content.Intent")
    key = _as_text(call.arg(0))
    if key is None:
        return ApiResult(result=base, base_update=base)
    updated = base.with_member(f"extra:{key}", call.arg(1))
    return ApiResult(result=updated, base_update=updated)


def _intent_get_string_extra(call: ApiCall) -> ApiResult:
    """``intent.getStringExtra(key)`` — look the extra back up."""
    base = call.base_fact
    key = _as_text(call.arg(0))
    if isinstance(base, NewObjFact) and key is not None:
        member = base.member(f"extra:{key}")
        if member is not None:
            return ApiResult(result=member)
    return ApiResult(result=UnknownFact("getStringExtra"))


def _intent_set_action(call: ApiCall) -> ApiResult:
    base = call.base_fact
    if not isinstance(base, NewObjFact):
        base = NewObjFact.make("android.content.Intent")
    updated = base.with_member("action", call.arg(0))
    return ApiResult(result=updated, base_update=updated)


def _intent_get_action(call: ApiCall) -> ApiResult:
    base = call.base_fact
    if isinstance(base, NewObjFact):
        action = base.member("action") or base.member("arg0")
        if action is not None:
            return ApiResult(result=action)
    return ApiResult(result=UnknownFact("getAction"))


def _identity_base(call: ApiCall) -> ApiResult:
    return ApiResult(result=call.base_fact or UnknownFact("identity"))


#: (class name, method name) -> model.
API_MODELS: dict[tuple[str, str], ApiModel] = {
    ("java.lang.StringBuilder", "<init>"): _sb_init,
    ("java.lang.StringBuilder", "append"): _sb_append,
    ("java.lang.StringBuilder", "toString"): _sb_to_string,
    ("java.lang.String", "valueOf"): _string_value_of,
    ("java.lang.String", "concat"): _string_concat,
    ("java.lang.String", "toLowerCase"): _string_transform(str.lower),
    ("java.lang.String", "toUpperCase"): _string_transform(str.upper),
    ("java.lang.String", "trim"): _string_transform(str.strip),
    ("java.lang.String", "format"): _string_format,
    ("java.lang.String", "substring"): _string_substring,
    ("java.lang.String", "replace"): _string_replace,
    ("android.text.TextUtils", "isEmpty"): _text_utils_is_empty,
    ("java.lang.Integer", "parseInt"): _integer_parse,
    ("java.lang.Integer", "toString"): _integer_to_string,
    ("java.lang.Integer", "valueOf"): _identity_arg0,
    ("android.content.Intent", "putExtra"): _intent_put_extra,
    ("android.content.Intent", "getStringExtra"): _intent_get_string_extra,
    ("android.content.Intent", "setAction"): _intent_set_action,
    ("android.content.Intent", "getAction"): _intent_get_action,
    ("android.telephony.SmsManager", "getDefault"): _new_obj(
        "android.telephony.SmsManager"
    ),
    ("java.util.concurrent.Executors", "newFixedThreadPool"): _new_obj(
        "java.util.concurrent.ExecutorService"
    ),
    ("java.util.concurrent.Executors", "newSingleThreadExecutor"): _new_obj(
        "java.util.concurrent.ExecutorService"
    ),
    ("java.util.concurrent.Executors", "newCachedThreadPool"): _new_obj(
        "java.util.concurrent.ExecutorService"
    ),
}


def lookup_model(method: MethodSignature) -> Optional[ApiModel]:
    """The registered model for a framework method, if any."""
    return API_MODELS.get((method.class_name, method.name))


def framework_constant(fieldsig: FieldSignature) -> Optional[Fact]:
    """The well-known value of a framework static field, if modelled."""
    return FRAMEWORK_CONSTANT_FACTS.get(fieldsig)
