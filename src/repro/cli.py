"""Command-line front end.

Because this reproduction operates on a synthetic bytecode substrate
(there is no APK parser — see DESIGN.md), the CLI works on the built-in
app sources:

* the paper's worked examples (``lgtv``, ``heyzap``, ``palcomp3``);
* generated benchmark apps (``bench:<index>``).

Commands::

    backdroid analyze lgtv --rules open-port --dump-ssg
    backdroid analyze bench:7
    backdroid compare bench:3 --timeout 5
    backdroid corpus --year 2018 --count 1000
    backdroid inventory bench:3
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import Optional

from repro.android.apk import Apk
from repro.baseline import AmandroidConfig, AmandroidStyleAnalyzer
from repro.core import BackDroid, BackDroidConfig
from repro.workload.corpus import benchmark_app_spec, sample_year_corpus
from repro.workload.generator import generate_app
from repro.workload.paperapps import build_heyzap, build_lg_tv_plus, build_palcomp3

_PAPER_APPS = {
    "lgtv": build_lg_tv_plus,
    "heyzap": build_heyzap,
    "palcomp3": build_palcomp3,
}


def _load_app(name: str) -> Apk:
    if name in _PAPER_APPS:
        return _PAPER_APPS[name]()
    if name.startswith("bench:"):
        index = int(name.split(":", 1)[1])
        return generate_app(benchmark_app_spec(index)).apk
    raise SystemExit(
        f"unknown app {name!r}: use one of {sorted(_PAPER_APPS)} or bench:<index>"
    )


def _rules(args) -> tuple[str, ...]:
    return tuple(args.rules.split(",")) if args.rules else ("crypto-ecb", "ssl-verifier")


def cmd_analyze(args) -> int:
    apk = _load_app(args.app)
    config = BackDroidConfig(
        sink_rules=_rules(args),
        check_class_hierarchy_in_initial_search=args.hierarchy_fix,
        collect_ssg_dumps=args.dump_ssg,
    )
    report = BackDroid(config).analyze(apk)
    print(report.to_text())
    if args.dump_ssg:
        for note in report.notes:
            print()
            print(note)
    return 1 if report.vulnerable else 0


def cmd_compare(args) -> int:
    apk = _load_app(args.app)
    backdroid = BackDroid(BackDroidConfig(sink_rules=_rules(args)))
    baseline = AmandroidStyleAnalyzer(
        AmandroidConfig(timeout_seconds=args.timeout), sink_rules=_rules(args)
    )
    bd = backdroid.analyze(apk)
    am = baseline.analyze(apk)
    print(f"app: {apk.package} ({apk.method_count()} methods)")
    print(f"BackDroid : {bd.analysis_seconds:8.3f}s  "
          f"{len(bd.findings)} findings  ({bd.sink_count} sinks analyzed)")
    status = "TIMEOUT" if am.timed_out else (am.error or "ok")
    print(f"whole-app : {am.analysis_seconds:8.3f}s  "
          f"{len(am.findings)} findings  [{status}]")
    only_bd = {f.method.class_name for f in bd.findings} - {
        f.method.class_name for f in am.findings
    }
    if only_bd:
        print("flagged only by BackDroid: " + ", ".join(sorted(only_bd)))
    return 0


def cmd_corpus(args) -> int:
    apps = sample_year_corpus(args.year, count=args.count)
    sizes = [a.size_mb for a in apps]
    print(f"year {args.year}: {len(apps)} apps, "
          f"avg {statistics.fmean(sizes):.1f}MB, "
          f"median {statistics.median(sizes):.1f}MB")
    return 0


def cmd_inventory(args) -> int:
    apk = _load_app(args.app)
    print(f"package : {apk.package}")
    print(f"size    : {apk.size_mb:.1f}MB (year {apk.year})")
    print(f"classes : {apk.class_count()}  methods: {apk.method_count()}  "
          f"code units: {apk.code_units()}")
    print("components:")
    for component in apk.manifest.components:
        print(f"  {component.kind.value:9} {component.class_name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="backdroid",
        description="Targeted inter-procedural analysis via on-the-fly "
        "bytecode search (BackDroid reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="run BackDroid on an app")
    analyze.add_argument("app")
    analyze.add_argument("--rules", default="",
                         help="comma-separated rule ids (default: crypto+ssl)")
    analyze.add_argument("--hierarchy-fix", action="store_true",
                         help="enable the class-hierarchy initial-search fix")
    analyze.add_argument("--dump-ssg", action="store_true")
    analyze.set_defaults(func=cmd_analyze)

    compare = sub.add_parser("compare", help="BackDroid vs whole-app baseline")
    compare.add_argument("app")
    compare.add_argument("--rules", default="")
    compare.add_argument("--timeout", type=float, default=5.0)
    compare.set_defaults(func=cmd_compare)

    corpus = sub.add_parser("corpus", help="sample a Table-I year corpus")
    corpus.add_argument("--year", type=int, default=2018)
    corpus.add_argument("--count", type=int, default=1000)
    corpus.set_defaults(func=cmd_corpus)

    inventory = sub.add_parser("inventory", help="describe an app")
    inventory.add_argument("app")
    inventory.set_defaults(func=cmd_inventory)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
