"""Job records and the thread-safe queue behind the analysis service.

A resident service decouples *submission* from *execution*: clients post
an app spec, get a job id back immediately, and poll (or block) for the
result while worker lanes drain the queue.  The queue owns three
responsibilities the executors cannot cover themselves:

* **lifecycle** — every job moves ``queued → running → done|failed``
  with timestamps, so wait time (``started_at - submitted_at``) and run
  time are observable per job and per lane;
* **in-flight dedup** — two submissions resolving to the same content
  key (disassembly sha) while the first is still queued or running
  coalesce onto one analysis: the second job becomes a *follower* that
  completes the moment the primary does, sharing its result payload
  verbatim (re-submitting after completion starts a fresh job — results
  are retained, not cached forever);
* **bounded retention** — finished jobs are kept for polling but only
  the newest ``max_finished`` of them, so a long-lived service does not
  grow without bound;
* **cancellation** — a queued job cancels immediately (it never runs);
  a running job is marked ``cancelling`` and reaches the terminal
  ``cancelled`` state when its worker completes (the analysis itself is
  not interruptible mid-run).  A job other submissions coalesced onto
  refuses cancellation — its result is shared — while a follower
  detaches and cancels alone.

All state lives behind one lock; completion wakes every waiter via a
condition variable.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.workload.generator import AppSpec

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
#: A cancel was requested while running; terminal ``cancelled`` follows
#: when the worker finishes.
CANCELLING = "cancelling"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
JOB_STATES = (QUEUED, RUNNING, CANCELLING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: ``JobQueue.cancel`` dispositions.
CANCEL_UNKNOWN = "unknown"        # no such job (or evicted)
CANCEL_TERMINAL = "terminal"      # already done/failed/cancelled
CANCEL_CONFLICT = "conflict"      # shared by coalesced followers
CANCEL_DONE = "cancelled"         # cancelled immediately (never ran)
CANCEL_PENDING = "cancelling"     # running; terminal state follows


@dataclass
class Job:
    """One submission's record (mutated only under the queue's lock)."""

    id: str
    spec: AppSpec
    #: Content dedup key: the disassembly sha when the store resolved
    #: the spec, a spec-fingerprint surrogate otherwise.
    key: str
    #: Every key this job coalesces under (always includes ``key``; a
    #: store-resolved job also carries its spec-fingerprint surrogate so
    #: duplicates submitted before/after the store learned the sha still
    #: find it).
    aliases: tuple[str, ...] = ()
    lane: str = "main"
    #: The store probe classified this submission as warm at submit time.
    warm: bool = False
    #: Per-job target/knob overrides (an
    #: :class:`~repro.api.request.AnalysisRequest`), None for the
    #: service defaults.  Folded into the dedup key by the scheduler so
    #: differently-targeted jobs never coalesce.
    request: Optional[object] = None
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: The finished outcome payload (shared verbatim with followers).
    result: Optional[dict] = None
    error: Optional[str] = None
    #: Primary job id when this submission coalesced onto an in-flight
    #: analysis of the same key.
    coalesced_into: Optional[str] = None
    #: Pid of the process that executed the analysis: the service's own
    #: pid for in-process lanes, a worker process's pid for the
    #: out-of-process cold lane.  None until execution starts.
    worker_pid: Optional[int] = None
    #: The job's trace id (None when the scheduler's tracer is off).
    trace_id: Optional[str] = None
    #: Cluster node that executed the job (None on single-node serves).
    node_id: Optional[str] = None
    #: Finished span dicts, attached once by the scheduler when the
    #: job's root span closes.  Served only on request (``?trace=1``).
    trace: Optional[list] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def wait_seconds(self) -> Optional[float]:
        """Queue wait: submission to execution start (None while queued)."""
        if self.started_at is None:
            return None
        return max(0.0, self.started_at - self.submitted_at)

    def as_dict(self, include_trace: bool = False) -> dict:
        """The JSON shape the HTTP API serves.

        The span list is bulky and most polls don't want it, so it only
        rides along with ``include_trace`` (the ``?trace=1`` query);
        ``trace_id`` is always present for log correlation.
        """
        payload = {
            "id": self.id,
            "package": self.spec.package,
            "key": self.key,
            "lane": self.lane,
            "warm": self.warm,
            "request": (
                self.request.as_dict() if self.request is not None else None
            ),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wait_seconds": self.wait_seconds,
            "coalesced_into": self.coalesced_into,
            "worker_pid": self.worker_pid,
            "trace_id": self.trace_id,
            "node_id": self.node_id,
            "result": self.result,
            "error": self.error,
        }
        if include_trace:
            payload["trace"] = list(self.trace) if self.trace else None
        return payload


class JobQueue:
    """Thread-safe job registry with in-flight dedup and retention."""

    def __init__(self, max_finished: int = 256) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be a positive integer")
        self.max_finished = max_finished
        self._lock = threading.Lock()
        self._terminal = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        #: key -> primary job id, for every non-terminal primary.
        self._active_by_key: dict[str, str] = {}
        #: primary job id -> follower job ids awaiting its result.
        self._followers: dict[str, list[str]] = {}
        self._retained: deque[str] = deque()
        self._ids = itertools.count(1)
        self.dedup_hits = 0

    # ------------------------------------------------------------------
    def submit(
        self,
        spec: AppSpec,
        key: str,
        lane: str = "main",
        warm: bool = False,
        aliases: tuple[str, ...] = (),
        request: Optional[object] = None,
        node_id: Optional[str] = None,
    ) -> tuple[Job, bool]:
        """Register a submission; returns ``(job, is_primary)``.

        When an analysis for *key* — or any of its *aliases* — is
        already queued or running, the new job coalesces onto it
        (``is_primary`` False) and no execution should be scheduled for
        it: it completes with the primary.  Aliases close the cold-start
        race where the store learns a spec's disassembly sha mid-run and
        a duplicate would otherwise resolve to a different key.
        """
        with self._lock:
            all_keys = (key,) + tuple(a for a in aliases if a != key)
            job = Job(
                id=f"job-{next(self._ids):06d}",
                spec=spec,
                key=key,
                aliases=all_keys,
                lane=lane,
                warm=warm,
                request=request,
                node_id=node_id,
                submitted_at=time.time(),
            )
            primary_id = next(
                (
                    self._active_by_key[k]
                    for k in all_keys
                    if k in self._active_by_key
                ),
                None,
            )
            if primary_id is not None:
                primary = self._jobs[primary_id]
                job.coalesced_into = primary_id
                job.lane = primary.lane
                job.warm = primary.warm
                if primary.state == RUNNING:
                    job.state = RUNNING
                    job.started_at = time.time()
                self._followers.setdefault(primary_id, []).append(job.id)
                self._jobs[job.id] = job
                self.dedup_hits += 1
                return job, False
            for k in all_keys:
                self._active_by_key[k] = job.id
            self._jobs[job.id] = job
            return job, True

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def snapshot(
        self, job_id: str, include_trace: bool = False
    ) -> Optional[dict]:
        """A consistent JSON view of one job, or None when unknown."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return job.as_dict(include_trace=include_trace)

    def snapshots(self) -> list[dict]:
        """JSON views of every retained job, in submission order."""
        with self._lock:
            return [job.as_dict() for job in self._jobs.values()]

    # ------------------------------------------------------------------
    def mark_running(self, job_id: str) -> None:
        """A worker picked the primary up; followers mirror the state."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            now = time.time()
            job.state = RUNNING
            job.started_at = now
            for follower_id in self._followers.get(job_id, ()):
                follower = self._jobs[follower_id]
                follower.state = RUNNING
                follower.started_at = now

    def record_worker(self, job_id: str, pid: Optional[int]) -> None:
        """Attach the executing process's pid (mirrored to followers)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            job.worker_pid = pid
            for follower_id in self._followers.get(job_id, ()):
                self._jobs[follower_id].worker_pid = pid

    def set_trace_id(self, job_id: str, trace_id: Optional[str]) -> None:
        """Stamp a job with its trace id (set once, at submit time)."""
        if trace_id is None:
            return
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.trace_id = trace_id

    def attach_trace(self, job_id: str, spans: list) -> None:
        """Attach a job's finished span list (the collected trace)."""
        if not spans:
            return
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.trace = list(spans)

    def finish(
        self,
        job_id: str,
        result: Optional[dict] = None,
        error: Optional[str] = None,
    ) -> list[Job]:
        """Complete a primary (and every follower) with one payload.

        Returns the jobs that reached a terminal state in this call —
        the primary plus its followers — so callers can account for all
        of them (lane statistics, logging).
        """
        with self._terminal:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return []
            now = time.time()
            cancelling = job.state == CANCELLING
            members = [job] + [
                self._jobs[f] for f in self._followers.pop(job_id, ())
            ]
            for member in members:
                if cancelling:
                    # The worker's result is discarded: the client asked
                    # for cancellation while the analysis was running.
                    member.state = CANCELLED
                    member.result = None
                    member.error = "cancelled by client"
                else:
                    member.state = FAILED if error is not None else DONE
                    member.result = result
                    member.error = error
                if member.started_at is None:
                    member.started_at = now
                member.finished_at = now
                self._retain(member)
            self._release_keys(job)
            self._terminal.notify_all()
            return members

    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> tuple[Optional[Job], str]:
        """Cancel one submission; returns ``(job, disposition)``.

        Dispositions:

        * ``"unknown"``    — no such job (job is None);
        * ``"terminal"``   — already done/failed/cancelled, nothing to do;
        * ``"conflict"``   — a primary other submissions coalesced onto;
          cancelling it would discard their shared result, so it is
          refused (cancel the followers individually instead);
        * ``"cancelled"``  — reached the terminal state immediately
          (a queued primary, or a follower detached from its primary);
        * ``"cancelling"`` — running; the terminal ``cancelled`` state
          follows when the worker completes, and its keys are released
          so new submissions of the same app start fresh.
        """
        with self._terminal:
            job = self._jobs.get(job_id)
            if job is None:
                return None, CANCEL_UNKNOWN
            if job.terminal:
                return job, CANCEL_TERMINAL
            if job.state == CANCELLING:
                return job, CANCEL_PENDING
            if job.coalesced_into is not None:
                # A follower: detach so the primary's completion no
                # longer touches it, then cancel it alone.
                followers = self._followers.get(job.coalesced_into)
                if followers is not None and job_id in followers:
                    followers.remove(job_id)
                self._cancel_now(job)
                return job, CANCEL_DONE
            if self._followers.get(job_id):
                return job, CANCEL_CONFLICT
            if job.state == QUEUED:
                self._release_keys(job)
                self._cancel_now(job)
                return job, CANCEL_DONE
            # Running: flag it and free the keys — duplicates submitted
            # from here on must not coalesce onto a discarded result.
            job.state = CANCELLING
            self._release_keys(job)
            return job, CANCEL_PENDING

    def _release_keys(self, job: Job) -> None:
        """Drop *job*'s dedup keys so new submissions start fresh."""
        for k in job.aliases or (job.key,):
            if self._active_by_key.get(k) == job.id:
                del self._active_by_key[k]

    def _retain(self, job: Job) -> None:
        """Record a terminal job for polling, evicting past the bound."""
        self._retained.append(job.id)
        while len(self._retained) > self.max_finished:
            self._jobs.pop(self._retained.popleft(), None)

    def _cancel_now(self, job: Job) -> None:
        """Move one job to the terminal ``cancelled`` state (lock held)."""
        now = time.time()
        job.state = CANCELLED
        job.error = "cancelled by client"
        job.result = None
        if job.started_at is None:
            job.started_at = now
        job.finished_at = now
        self._retain(job)
        self._terminal.notify_all()

    # ------------------------------------------------------------------
    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until a job is terminal; raises on unknown id/timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise KeyError(f"unknown or evicted job {job_id!r}")
                if job.terminal:
                    return job
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.state} after {timeout}s"
                    )
                self._terminal.wait(remaining)

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every retained job is terminal (the drain wait).

        Returns True when the queue went idle, False on timeout.  New
        submissions arriving during the wait extend it — callers drain
        behind a closed front door (503 on submit), so in practice the
        population only shrinks.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            while True:
                if all(job.terminal for job in self._jobs.values()):
                    return True
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._terminal.wait(remaining)

    # ------------------------------------------------------------------
    def counts(self) -> dict:
        """State counters plus dedup statistics."""
        with self._lock:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            return {
                "by_state": by_state,
                "retained": len(self._jobs),
                "in_flight_keys": len(self._active_by_key),
                "dedup_hits": self.dedup_hits,
            }
