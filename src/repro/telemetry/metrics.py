"""The metrics registry: counters, gauges, histograms, Prometheus text.

Instruments are named, typed, and optionally labelled; one registry
instance belongs to one scheduler (no process-global state, so tests
and embedded schedulers never share counters).  The hot path is
deliberately cheap: recording touches only the instrument's own small
lock (series lookup + a float update) — the registry-wide lock is taken
only when an instrument is first created or at scrape time.

Three consumers read a registry:

* ``GET /metrics`` — :meth:`MetricsRegistry.render_prometheus`
  (text exposition format 0.0.4);
* ``GET /v1/stats`` — :meth:`MetricsRegistry.as_dict` embedded under a
  ``"metrics"`` key for backward-compatible JSON scraping;
* gauge callbacks — externally-owned values (lane depth, live store
  counters, worker restarts) are registered once with
  :meth:`Gauge.set_function` and read at scrape time, so migrating an
  existing stat costs no bookkeeping on its hot path at all.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Callable, Iterable, Optional

from repro.telemetry.quantiles import quantile

#: Default histogram buckets, latency-shaped (seconds): the service's
#: interesting range spans sub-millisecond warm restores to multi-second
#: cold analyses.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: How many recent raw observations each histogram series keeps for
#: quantile queries (buckets alone only bound quantiles).
RECENT_SAMPLE_WINDOW = 512


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labelnames: tuple, labelvalues: tuple) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Instrument:
    """Shared series bookkeeping for one named instrument."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str],
        const_labels: Optional[dict] = None,
    ):
        self.name = name
        self.help = help_text
        self.const_labels = dict(const_labels or {})
        self.labelnames = tuple(self.const_labels) + tuple(labelnames)
        self._lock = threading.Lock()
        self._series: "OrderedDict[tuple, object]" = OrderedDict()

    def _key(self, labels: dict) -> tuple:
        if self.const_labels:
            labels = {**self.const_labels, **labels}
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _series_items(self) -> list:
        with self._lock:
            return list(self._series.items())


class Counter(_Instrument):
    """A monotonically increasing float (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def collect(self) -> list:
        return [
            (key, float(value)) for key, value in self._series_items()
        ]


class Gauge(_Instrument):
    """A value that goes both ways; series may be callback-backed."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            current = self._series.get(key, 0.0)
            if callable(current):
                raise ValueError(
                    f"{self.name}{key} is callback-backed; cannot inc()"
                )
            self._series[key] = current + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels) -> None:
        """Bind a series to a zero-argument callable read at scrape
        time — how externally-owned values are exported unchanged."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = fn

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            current = self._series.get(key, 0.0)
        return float(current() if callable(current) else current)

    def collect(self) -> list:
        out = []
        for key, value in self._series_items():
            if callable(value):
                try:
                    value = value()
                except Exception:
                    continue  # a dying callback must not break a scrape
            out.append((key, float(value)))
        return out


class Histogram(_Instrument):
    """Cumulative buckets + sum/count + a recent-sample window."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        const_labels: Optional[dict] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames,
                         const_labels=const_labels)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")

    def _state(self, key: tuple) -> dict:
        state = self._series.get(key)
        if state is None:
            state = self._series[key] = {
                "buckets": [0] * len(self.buckets),
                "sum": 0.0,
                "count": 0,
                "recent": deque(maxlen=RECENT_SAMPLE_WINDOW),
            }
        return state

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            state = self._state(key)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state["buckets"][index] += 1
                    break
            state["sum"] += value
            state["count"] += 1
            state["recent"].append(value)

    def quantile(self, fraction: float, **labels) -> Optional[float]:
        """Nearest-rank quantile over the recent-sample window (shares
        :func:`repro.telemetry.quantiles.quantile` and its ``None``
        semantics for sub-two-sample windows)."""
        key = self._key(labels)
        with self._lock:
            state = self._series.get(key)
            recent = list(state["recent"]) if state else []
        return quantile(recent, fraction)

    def collect(self) -> list:
        out = []
        with self._lock:
            for key, state in self._series.items():
                out.append(
                    (
                        key,
                        {
                            "buckets": list(state["buckets"]),
                            "sum": state["sum"],
                            "count": state["count"],
                            "recent": list(state["recent"]),
                        },
                    )
                )
        return out


class MetricsRegistry:
    """Get-or-create instruments by name; render them all at once."""

    def __init__(self, const_labels: Optional[dict] = None) -> None:
        """``const_labels`` are stamped on every series of every
        instrument (e.g. ``{"node": "n1"}`` in a cluster node), so one
        scrape endpoint per node stays distinguishable after
        aggregation."""
        self._lock = threading.Lock()
        self.const_labels = dict(const_labels or {})
        self._instruments: "OrderedDict[str, _Instrument]" = OrderedDict()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                expected = tuple(self.const_labels) + tuple(labelnames)
                if not isinstance(existing, cls) or (
                    existing.labelnames != expected
                ):
                    raise ValueError(
                        f"instrument {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            instrument = cls(
                name, help_text, labelnames,
                const_labels=self.const_labels, **kwargs
            )
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> list:
        with self._lock:
            return list(self._instruments.values())

    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """Text exposition format 0.0.4 (the ``GET /metrics`` body)."""
        lines = []
        for instrument in self.instruments():
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for key, state in instrument.collect():
                    cumulative = 0
                    for bound, bucket_count in zip(
                        instrument.buckets, state["buckets"]
                    ):
                        cumulative += bucket_count
                        labels = _render_labels(
                            instrument.labelnames + ("le",),
                            key + (_format_value(bound),),
                        )
                        lines.append(
                            f"{instrument.name}_bucket{labels} {cumulative}"
                        )
                    labels = _render_labels(
                        instrument.labelnames + ("le",), key + ("+Inf",)
                    )
                    lines.append(
                        f"{instrument.name}_bucket{labels} {state['count']}"
                    )
                    plain = _render_labels(instrument.labelnames, key)
                    lines.append(
                        f"{instrument.name}_sum{plain} "
                        f"{_format_value(state['sum'])}"
                    )
                    lines.append(
                        f"{instrument.name}_count{plain} {state['count']}"
                    )
            else:
                for key, value in instrument.collect():
                    labels = _render_labels(instrument.labelnames, key)
                    lines.append(
                        f"{instrument.name}{labels} {_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"

    def as_dict(self) -> dict:
        """JSON-able snapshot for embedding in ``/v1/stats``."""
        out = {}
        for instrument in self.instruments():
            series = []
            if isinstance(instrument, Histogram):
                for key, state in instrument.collect():
                    recent = state["recent"]
                    series.append(
                        {
                            "labels": dict(zip(instrument.labelnames, key)),
                            "count": state["count"],
                            "sum": state["sum"],
                            "p50": quantile(recent, 0.50),
                            "p99": quantile(recent, 0.99),
                        }
                    )
            else:
                for key, value in instrument.collect():
                    series.append(
                        {
                            "labels": dict(zip(instrument.labelnames, key)),
                            "value": value,
                        }
                    )
            out[instrument.name] = {
                "type": instrument.kind,
                "help": instrument.help,
                "series": series,
            }
        return out
