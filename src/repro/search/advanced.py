"""Advanced search with forward object taint analysis (Sec. IV-B).

The basic signature search fails for callee methods reached through Java
polymorphism (super classes, interfaces), callbacks and asynchronous
flows: the bytecode at the caller site carries a *different* signature
(the super class's, the interface's, or a framework API like
``Executor.execute``), so searching the callee's own signature hits
nothing.

The paper's insight: "instead of directly searching for caller methods,
we first search the callee class's object constructor(s) that can be
accurately located via the signature based search.  Right from those
object constructors, we then perform forward object taint analysis until
we detect the caller methods with the tainted object propagated into."

Only three statement kinds propagate the object (the paper tracks
exactly these): ``DefinitionStmt``, ``InvokeStmt`` and ``ReturnStmt``.

The *ending method* is recognised without any hardwired flow map (unlike
EdgeMiner-style prior work): the interface/super class type of the callee
class is the indicator — the analysis stops at a framework API call whose
tainted parameter (or receiver) is declared with a type the callee class
is a subtype of.  The whole call chain from the constructor to the ending
method is maintained and returned, so later backward searches follow the
one flow that actually carries the object (Sec. IV-B, "Maintaining and
returning a call chain").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.android.framework import is_framework_class
from repro.dex.hierarchy import ClassPool, DexMethod
from repro.dex.instructions import (
    AssignStmt,
    CastExpr,
    IdentityStmt,
    InstanceFieldRef,
    InvokeExpr,
    Local,
    NewExpr,
    ParameterRef,
    PhiExpr,
    ReturnStmt,
    StaticFieldRef,
    Stmt,
    ThisRef,
)
from repro.dex.types import FieldSignature, MethodSignature
from repro.search.basic import basic_search
from repro.search.common import CallChainLink, ResolvedCaller
from repro.search.index import BytecodeSearcher, instruction_opcode
from repro.search.loops import LoopDetector


def needs_advanced_search(pool: ClassPool, callee: MethodSignature) -> bool:
    """Whether the callee requires the advanced (constructor) search.

    True for virtual/interface methods that override or implement a
    declaration elsewhere in the hierarchy — super classes, interfaces,
    callbacks, asynchronous framework classes.  Signature methods and
    methods declared nowhere else stay with the basic search.
    """
    method = pool.resolve_method(callee)
    if method is not None and method.is_signature_method():
        return False
    sub_signature = callee.sub_signature()
    if pool.interface_declaring(callee.class_name, sub_signature) is not None:
        return True
    if pool.super_declaring(callee.class_name, sub_signature) is not None:
        return True
    return False


@dataclass
class _Ending:
    """One discovered ending: the chain from constructor to ending API."""

    chain: tuple[CallChainLink, ...]


@dataclass
class ForwardObjectTaint:
    """Forward object taint analysis from one constructor site."""

    searcher: BytecodeSearcher
    pool: ClassPool
    callee: MethodSignature
    loops: LoopDetector
    max_depth: int = 24
    endings: list[_Ending] = field(default_factory=list)
    _visited_fields: set[FieldSignature] = field(default_factory=set)

    # ------------------------------------------------------------------
    def run(self, start_method: MethodSignature, start_index: int, obj: Local) -> None:
        """Propagate *obj* forward from just after *start_index*.

        When the object is *returned* by the starting method (factory
        shapes), the propagation continues in the factory's callers,
        located — true to the on-the-fly paradigm — by another bytecode
        search.
        """
        returns_tainted = self._propagate(
            method_sig=start_method,
            from_index=start_index + 1,
            tainted={obj.name},
            chain_prefix=(),
            path=(start_method,),
        )
        if not returns_tainted:
            return
        from repro.search.basic import basic_search as _basic_search

        for site in _basic_search(self.searcher, self.pool, start_method):
            if self.loops.check_forward((start_method,), site.caller):
                continue
            caller = self.pool.resolve_method(site.caller)
            if caller is None or site.stmt_index >= len(caller.body):
                continue
            call_stmt = caller.body[site.stmt_index]
            if not isinstance(call_stmt, AssignStmt) or not isinstance(
                call_stmt.lhs, Local
            ):
                continue
            self._propagate(
                method_sig=site.caller,
                from_index=site.stmt_index + 1,
                tainted={call_stmt.lhs.name},
                chain_prefix=(CallChainLink(start_method, start_index),),
                path=(start_method, site.caller),
            )

    # ------------------------------------------------------------------
    def _propagate(
        self,
        method_sig: MethodSignature,
        from_index: int,
        tainted: set[str],
        chain_prefix: tuple[CallChainLink, ...],
        path: tuple[MethodSignature, ...],
    ) -> bool:
        """Walk *method_sig*'s body forward; True if the return is tainted.

        ``chain_prefix`` holds the finished frames of *previous* methods;
        this method contributes its own frame (with the statement index
        of the forwarding site) whenever the object steps onward.
        """
        if len(path) > self.max_depth:
            return False
        method = self.pool.resolve_method(method_sig)
        if method is None or not method.has_body:
            return False
        tainted = set(tainted)
        returns_tainted = False
        inner_chain: tuple[MethodSignature, ...] = ()
        for index in range(from_index, len(method.body)):
            stmt = method.body[index]
            if isinstance(stmt, IdentityStmt):
                continue
            if isinstance(stmt, ReturnStmt):
                if isinstance(stmt.value, Local) and stmt.value.name in tainted:
                    returns_tainted = True
                continue
            expr = stmt.invoke_expr()
            if expr is not None:
                inner_chain = self._handle_invoke(
                    stmt, expr, index, method, tainted, chain_prefix, path, inner_chain
                )
            if isinstance(stmt, AssignStmt):
                self._handle_assign(stmt, index, method, tainted, chain_prefix, path)
        return returns_tainted

    # ------------------------------------------------------------------
    def _handle_assign(
        self,
        stmt: AssignStmt,
        index: int,
        method: DexMethod,
        tainted: set[str],
        chain_prefix: tuple[CallChainLink, ...],
        path: tuple[MethodSignature, ...],
    ) -> None:
        rhs_tainted = self._rhs_tainted(stmt.rhs, tainted)
        lhs = stmt.lhs
        if rhs_tainted:
            if isinstance(lhs, Local):
                tainted.add(lhs.name)
            elif isinstance(lhs, (InstanceFieldRef, StaticFieldRef)):
                # The object escapes into a field: bridge the taint to
                # every load of that field found by bytecode search.
                self._bridge_field(lhs.fieldsig, chain_prefix, path, method, index)
        elif isinstance(lhs, Local) and lhs.name in tainted:
            # Strong update: the register is overwritten with an
            # untainted value.
            tainted.discard(lhs.name)

    def _rhs_tainted(self, rhs, tainted: set[str]) -> bool:
        if isinstance(rhs, Local):
            return rhs.name in tainted
        if isinstance(rhs, CastExpr):
            return self._rhs_tainted(rhs.value, tainted)
        if isinstance(rhs, PhiExpr):
            return any(self._rhs_tainted(v, tainted) for v in rhs.values)
        return False

    def _bridge_field(
        self,
        fieldsig: FieldSignature,
        chain_prefix: tuple[CallChainLink, ...],
        path: tuple[MethodSignature, ...],
        method: DexMethod,
        index: int,
    ) -> None:
        if fieldsig in self._visited_fields:
            return
        self._visited_fields.add(fieldsig)
        store_link = CallChainLink(method.signature(), index)
        for hit in self.searcher.find_field_accesses(fieldsig):
            if hit.method is None or hit.stmt_index is None:
                continue
            opcode = instruction_opcode(hit.line)
            if not opcode or not opcode.startswith(("iget", "sget")):
                continue
            if self.loops.check_forward(path, hit.method):
                continue
            target = self.pool.resolve_method(hit.method)
            if target is None or hit.stmt_index >= len(target.body):
                continue
            load = target.body[hit.stmt_index]
            if not isinstance(load, AssignStmt) or not isinstance(load.lhs, Local):
                continue
            self._propagate(
                method_sig=hit.method,
                from_index=hit.stmt_index + 1,
                tainted={load.lhs.name},
                chain_prefix=chain_prefix + (store_link,),
                path=path + (hit.method,),
            )

    # ------------------------------------------------------------------
    def _handle_invoke(
        self,
        stmt: Stmt,
        expr: InvokeExpr,
        index: int,
        method: DexMethod,
        tainted: set[str],
        chain_prefix: tuple[CallChainLink, ...],
        path: tuple[MethodSignature, ...],
        inner_chain: tuple[MethodSignature, ...],
    ) -> tuple[MethodSignature, ...]:
        base_tainted = expr.base is not None and expr.base.name in tainted
        tainted_arg_positions = [
            i
            for i, arg in enumerate(expr.args)
            if isinstance(arg, Local) and arg.name in tainted
        ]
        if not base_tainted and not tainted_arg_positions:
            return inner_chain

        here = CallChainLink(method.signature(), index)
        if self._is_ending(expr, base_tainted, tainted_arg_positions):
            self.endings.append(_Ending(chain=chain_prefix + (here,)))
            return inner_chain

        # Not an ending: step into an application-level target carrying
        # the taint (wrapper chains like Util.runInBackground in Fig. 4).
        target = self.pool.resolve_method(expr.method)
        if target is None or not target.has_body:
            return inner_chain
        if is_framework_class(target.declaring_class):
            return inner_chain
        target_sig = target.signature()
        if self.loops.check_inner_forward(inner_chain, target_sig):
            return inner_chain
        if self.loops.check_forward(path, target_sig):
            return inner_chain
        callee_taint = self._entry_taint(target, base_tainted, tainted_arg_positions)
        if not callee_taint:
            return inner_chain
        returns_tainted = self._propagate(
            method_sig=target_sig,
            from_index=0,
            tainted=callee_taint,
            chain_prefix=chain_prefix + (here,),
            path=path + (target_sig,),
        )
        if returns_tainted and isinstance(stmt, AssignStmt) and isinstance(stmt.lhs, Local):
            tainted.add(stmt.lhs.name)
        return inner_chain + (target_sig,)

    def _entry_taint(
        self, target: DexMethod, base_tainted: bool, tainted_args: list[int]
    ) -> set[str]:
        """Map caller-side taint onto the target's identity locals."""
        names: set[str] = set()
        for stmt in target.body:
            if not isinstance(stmt, IdentityStmt):
                continue
            if isinstance(stmt.ref, ThisRef) and base_tainted:
                names.add(stmt.local.name)
            if isinstance(stmt.ref, ParameterRef) and stmt.ref.index in tainted_args:
                names.add(stmt.local.name)
        return names

    # ------------------------------------------------------------------
    def _is_ending(
        self, expr: InvokeExpr, base_tainted: bool, tainted_args: list[int]
    ) -> bool:
        """The Sec. IV-B ending-method determination.

        Without any pre-defined flow map, an invocation ends the forward
        analysis when:

        * it dispatches the callee's own sub-signature on the tainted
          object through a supertype (the super-class case), or
        * it is a framework API and a tainted argument's declared type is
          a supertype of the callee class (``Executor.execute(Runnable)``,
          ``View.setOnClickListener(OnClickListener)``,
          ``Thread.<init>(Runnable)``), or
        * it is a framework API on the tainted receiver declared by a
          framework supertype of the callee class
          (``AsyncTask.execute()``, ``Thread.start()``).
        """
        callee_cls = self.callee.class_name
        # Super-class dispatch of the very method we are resolving.
        if base_tainted and expr.method.sub_signature() == self.callee.sub_signature():
            if self.pool.is_subtype_of(callee_cls, expr.method.class_name):
                return True
        declaring = expr.method.class_name
        declaring_is_framework = is_framework_class(declaring) or (
            (cls := self.pool.get(declaring)) is not None and cls.is_framework
        )
        if not declaring_is_framework:
            return False
        for position in tainted_args:
            if position >= len(expr.method.param_types):
                continue
            declared = expr.method.param_types[position]
            if self.pool.is_subtype_of(callee_cls, declared):
                return True
        if base_tainted and self.pool.is_subtype_of(callee_cls, declaring):
            return True
        return False


def find_allocation_site(method: DexMethod, ctor_index: int, obj: Local) -> int:
    """The ``new`` statement for the object constructed at *ctor_index*."""
    for index in range(ctor_index - 1, -1, -1):
        stmt = method.body[index]
        if (
            isinstance(stmt, AssignStmt)
            and isinstance(stmt.lhs, Local)
            and stmt.lhs.name == obj.name
            and isinstance(stmt.rhs, NewExpr)
        ):
            return index
    return ctor_index


def advanced_search(
    searcher: BytecodeSearcher,
    pool: ClassPool,
    callee: MethodSignature,
    loops: Optional[LoopDetector] = None,
) -> list[ResolvedCaller]:
    """Run the full advanced search for one callee method.

    Returns one :class:`ResolvedCaller` per (constructor site, ending)
    pair, each carrying the maintained call chain.
    """
    loops = loops if loops is not None else LoopDetector()
    callee_class = pool.get(callee.class_name)
    if callee_class is None:
        return []
    constructors = callee_class.constructors()
    resolved: list[ResolvedCaller] = []
    seen: set[tuple[MethodSignature, int, tuple[CallChainLink, ...]]] = set()
    for ctor in constructors:
        ctor_sig = ctor.signature()
        for site in basic_search(searcher, pool, ctor_sig):
            caller_method = pool.resolve_method(site.caller)
            if caller_method is None:
                continue
            ctor_stmt = caller_method.body[site.stmt_index]
            expr = ctor_stmt.invoke_expr()
            if expr is None or expr.base is None:
                continue
            analysis = ForwardObjectTaint(
                searcher=searcher, pool=pool, callee=callee, loops=loops
            )
            analysis.run(site.caller, site.stmt_index, expr.base)
            allocation = find_allocation_site(caller_method, site.stmt_index, expr.base)
            for ending in analysis.endings:
                key = (site.caller, allocation, ending.chain)
                if key in seen:
                    continue
                seen.add(key)
                resolved.append(
                    ResolvedCaller(
                        method=site.caller,
                        stmt_index=allocation,
                        kind="constructor",
                        chain=ending.chain,
                        object_local=expr.base,
                    )
                )
    return resolved
