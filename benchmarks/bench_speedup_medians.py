"""Sec. VI-B — the headline comparison: 37x faster at the median.

Paper numbers: BackDroid median 2.13 paper-minutes vs Amandroid's 78.15
(37x); 30% of apps under one minute for BackDroid vs 0% for Amandroid;
77% vs 17% under ten minutes; BackDroid has zero timeouts vs 35%.
"""

import statistics

from benchmarks.conftest import (
    emit_table,
    render_table,
    run_corpus,
    to_paper_minutes,
)


def test_speedup_medians(benchmark):
    rows = benchmark.pedantic(run_corpus, rounds=1, iterations=1)

    analyzed = [r for r in rows if r.am_error is None]
    bd_minutes = sorted(to_paper_minutes(r.bd_seconds) for r in analyzed)
    am_minutes = sorted(to_paper_minutes(r.am_seconds) for r in analyzed)
    bd_median = statistics.median(bd_minutes)
    am_median = statistics.median(am_minutes)
    speedup = am_median / bd_median

    def share_under(minutes_list, limit):
        return sum(1 for m in minutes_list if m < limit) / len(minutes_list)

    table = render_table(
        "Sec. VI-B: overall performance comparison (paper-scale minutes)",
        ["Metric", "BackDroid", "Amandroid", "Paper (BD vs AM)"],
        [
            ["median time", f"{bd_median:.2f}m", f"{am_median:.2f}m",
             "2.13m vs 78.15m"],
            ["speedup", f"{speedup:.1f}x", "1x", "37x"],
            ["share < 1m", f"{share_under(bd_minutes, 1):.0%}",
             f"{share_under(am_minutes, 1):.0%}", "30% vs 0%"],
            ["share < 10m", f"{share_under(bd_minutes, 10):.0%}",
             f"{share_under(am_minutes, 10):.0%}", "77% vs 17%"],
            ["timeouts", "0",
             str(sum(1 for r in analyzed if r.am_timed_out)), "0 vs 50 (35%)"],
        ],
    )
    emit_table("speedup_medians", table)

    # Shape assertions: who wins, and by roughly what factor.
    assert speedup >= 10, "BackDroid must be an order of magnitude faster"
    assert speedup <= 150, "the factor stays in the tens, as in the paper"
    assert share_under(bd_minutes, 10) > share_under(am_minutes, 10)
