"""Shared benchmark infrastructure.

The Sec. VI experiments all run over one corpus pass: every benchmark app
is generated once, analyzed by BackDroid, by the Amandroid-style baseline
and by the FlowDroid-style CG generator, and the per-app rows are shared
by the figure/table benchmarks through a session fixture.

Environment knobs (all optional):

* ``REPRO_BENCH_APPS``    — corpus size (default 144, the paper's count);
* ``REPRO_BENCH_SCALE``   — bulk-code scale factor (default 1.0);
* ``REPRO_BENCH_TIMEOUT`` — scaled per-app timeout in seconds standing in
  for the paper's 300 minutes (default 5.0, i.e. 1 paper-minute ≈ 1/60 s).

Every benchmark writes its paper-style table to
``benchmarks/results/<name>.txt`` and echoes it into the terminal summary.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import pytest

from repro.baseline import (
    AmandroidConfig,
    AmandroidStyleAnalyzer,
    FlowDroidConfig,
    FlowDroidStyleCallGraphGenerator,
)
from repro.core import BackDroid, BackDroidConfig
from repro.search.loops import LoopKind
from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import generate_app
from repro.workload.patterns import GroundTruth

BENCH_APPS = int(os.environ.get("REPRO_BENCH_APPS", "144"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "5.0"))

#: The paper gave Amandroid 300 minutes; our budget is BENCH_TIMEOUT
#: seconds, so one paper-minute corresponds to this many wall seconds.
SECONDS_PER_PAPER_MINUTE = BENCH_TIMEOUT / 300.0

RESULTS_DIR = Path(__file__).parent / "results"

_REPORT_SECTIONS: list[tuple[str, str]] = []


def to_paper_minutes(seconds: float) -> float:
    """Convert measured wall seconds into paper-scale minutes."""
    return seconds / SECONDS_PER_PAPER_MINUTE


def emit_table(name: str, text: str) -> None:
    """Record a paper-style table: file + terminal summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    _REPORT_SECTIONS.append((name, text))
    print(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORT_SECTIONS:
        return
    terminalreporter.section("BackDroid reproduction tables")
    for name, text in _REPORT_SECTIONS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)


# ======================================================================
# The shared corpus pass
# ======================================================================


@dataclass
class AppRow:
    """Everything the figure/table benchmarks need for one app."""

    package: str
    size_mb: float
    truths: list[GroundTruth] = field(default_factory=list)
    has_hazard: bool = False
    # BackDroid
    bd_seconds: float = 0.0
    bd_sinks: int = 0
    bd_findings: list[tuple[str, str]] = field(default_factory=list)  # (rule, class)
    bd_cache_rate: float = 0.0
    bd_sink_cache_rate: float = 0.0
    bd_loop_counts: dict = field(default_factory=dict)
    # Amandroid-style baseline
    am_seconds: float = 0.0
    am_timed_out: bool = False
    am_error: Optional[str] = None
    am_findings: list[tuple[str, str]] = field(default_factory=list)
    # FlowDroid-style CG generation
    fd_seconds: float = 0.0
    fd_timed_out: bool = False

    @property
    def bd_vulnerable(self) -> bool:
        return bool(self.bd_findings)

    @property
    def am_vulnerable(self) -> bool:
        return bool(self.am_findings)


_CORPUS_CACHE: Optional[list[AppRow]] = None


def run_corpus() -> list[AppRow]:
    """Run all three tools over the benchmark corpus (cached)."""
    global _CORPUS_CACHE
    if _CORPUS_CACHE is not None:
        return _CORPUS_CACHE

    backdroid = BackDroid(BackDroidConfig())
    amandroid = AmandroidStyleAnalyzer(AmandroidConfig(timeout_seconds=BENCH_TIMEOUT))
    flowdroid = FlowDroidStyleCallGraphGenerator(
        FlowDroidConfig(timeout_seconds=BENCH_TIMEOUT)
    )

    rows: list[AppRow] = []
    for index in range(BENCH_APPS):
        generated = generate_app(benchmark_app_spec(index, scale=BENCH_SCALE))
        apk = generated.apk
        row = AppRow(
            package=apk.package,
            size_mb=apk.size_mb,
            truths=list(generated.truths),
            has_hazard=generated.has_hazard,
        )

        bd_report = backdroid.analyze(apk)
        row.bd_seconds = bd_report.analysis_seconds
        row.bd_sinks = bd_report.sink_count
        row.bd_findings = [
            (f.rule, f.method.class_name) for f in bd_report.findings
        ]
        row.bd_cache_rate = bd_report.search_cache_rate
        row.bd_sink_cache_rate = bd_report.sink_cache_rate
        row.bd_loop_counts = dict(bd_report.loop_counts)

        am_report = amandroid.analyze(apk)
        row.am_seconds = am_report.analysis_seconds
        row.am_timed_out = am_report.timed_out
        row.am_error = am_report.error
        row.am_findings = [
            (f.rule, f.method.class_name) for f in am_report.findings
        ]

        fd_report = flowdroid.generate(apk)
        row.fd_seconds = fd_report.generation_seconds
        row.fd_timed_out = fd_report.timed_out

        rows.append(row)
    _CORPUS_CACHE = rows
    return rows


@pytest.fixture(scope="session")
def corpus_rows() -> list[AppRow]:
    return run_corpus()


def bucket_histogram(
    values_minutes: list[float], edges: list[tuple[str, float, float]]
) -> dict[str, int]:
    """Bucket paper-minute values into labelled ranges."""
    counts = {label: 0 for label, _, _ in edges}
    for value in values_minutes:
        for label, low, high in edges:
            if low <= value < high:
                counts[label] += 1
                break
    return counts


def render_table(title: str, header: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table rendering for the result files."""
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
