"""Unit tests for dataflow facts."""

from repro.core.values import (
    ArrayObjFact,
    ConstFact,
    ExprFact,
    MultiFact,
    NewObjFact,
    UnknownFact,
    merge_facts,
)


class TestConstFact:
    def test_possible_consts(self):
        assert list(ConstFact("AES/ECB").possible_consts()) == ["AES/ECB"]
        assert list(ConstFact(8089).possible_consts()) == [8089]
        assert list(ConstFact(None).possible_consts()) == [None]

    def test_possible_strings_filters(self):
        assert ConstFact("x").possible_strings() == ["x"]
        assert ConstFact(3).possible_strings() == []

    def test_is_resolved(self):
        assert ConstFact("x").is_resolved()
        assert not UnknownFact("?").is_resolved()

    def test_render(self):
        assert str(ConstFact("AES")) == '"AES"'
        assert str(ConstFact(None)) == "null"
        assert str(ConstFact(8089)) == "8089"


class TestNewObjFact:
    def test_member_roundtrip(self):
        obj = NewObjFact.make("java.net.InetSocketAddress")
        obj = obj.with_member("arg0", ConstFact(None))
        obj = obj.with_member("arg1", ConstFact(8089))
        assert obj.member("arg1") == ConstFact(8089)
        assert obj.member("missing") is None

    def test_member_update_replaces(self):
        obj = NewObjFact.make("com.a.B", {"f": ConstFact(1)})
        updated = obj.with_member("f", ConstFact(2))
        assert updated.member("f") == ConstFact(2)
        assert obj.member("f") == ConstFact(1)  # immutability

    def test_hashable(self):
        a = NewObjFact.make("com.a.B", {"x": ConstFact(1)})
        b = NewObjFact.make("com.a.B", {"x": ConstFact(1)})
        assert a == b and len({a, b}) == 1

    def test_render(self):
        obj = NewObjFact.make("com.a.B", {"p": ConstFact(8089)})
        assert "new com.a.B" in str(obj) and "8089" in str(obj)


class TestArrayObjFact:
    def test_element_roundtrip(self):
        arr = ArrayObjFact.make("int").with_element(0, ConstFact(7))
        assert arr.element(0) == ConstFact(7)
        assert arr.element(1) is None

    def test_render(self):
        arr = ArrayObjFact.make("java.lang.String", {0: ConstFact("a")})
        assert "[0]=" in str(arr)


class TestMergeFacts:
    def test_single_passthrough(self):
        fact = ConstFact("x")
        assert merge_facts([fact]) is fact

    def test_dedup(self):
        merged = merge_facts([ConstFact("x"), ConstFact("x")])
        assert merged == ConstFact("x")

    def test_multi(self):
        merged = merge_facts([ConstFact("a"), ConstFact("b")])
        assert isinstance(merged, MultiFact)
        assert set(merged.possible_consts()) == {"a", "b"}

    def test_flattens_nested(self):
        inner = merge_facts([ConstFact("a"), ConstFact("b")])
        merged = merge_facts([inner, ConstFact("c")])
        assert isinstance(merged, MultiFact)
        assert len(merged.options) == 3

    def test_width_bound(self):
        wide = merge_facts([ConstFact(i) for i in range(64)])
        assert isinstance(wide, UnknownFact)

    def test_empty_merge_is_unknown(self):
        assert isinstance(merge_facts([]), UnknownFact)

    def test_expr_fact_render(self):
        assert str(ExprFact("a + b")) == "a + b"
