"""Client-extensible sink/detector registration.

The paper hard-codes its evaluation sinks (Sec. VI-A); AnaDroid-style
clients instead supply their own analysis predicates.  A
:class:`TargetRegistry` holds both halves of a rule family — the sink
API signatures the initial search hunts for, and the detector judging
each resolved sink call — so clients can add new rules without editing
:mod:`repro.android.framework` or :mod:`repro.core.detectors`.

Every registry starts from the built-in catalogue (the paper's sinks and
detectors) unless constructed with ``include_builtin=False``.  Spec
order is preserved as registered (built-ins keep catalogue order), which
matters for duplicate-site attribution: when two specs locate the same
call site, the first registered spec claims it.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

from repro.android.framework import SINK_CATALOGUE, SinkSpec
from repro.core.detectors import DETECTORS, Detector


def builtin_rules() -> tuple[str, ...]:
    """The built-in rule families, in catalogue order."""
    return tuple(dict.fromkeys(spec.rule for spec in SINK_CATALOGUE))


class TargetRegistry:
    """Sink specs and detectors, keyed by rule family.

    Mutable by design — ``register`` adds client sinks, and
    ``register_detector`` attaches or replaces the judge of a rule.
    Sessions built without an explicit registry get a private copy of
    the built-ins, so registrations never leak between sessions.
    """

    def __init__(self, include_builtin: bool = True) -> None:
        """Create a registry, seeded with the built-in sink catalogue
        and detectors unless ``include_builtin`` is False."""
        self._catalogue: list[SinkSpec] = []
        self._detectors: dict[str, Detector] = {}
        if include_builtin:
            self._catalogue.extend(SINK_CATALOGUE)
            self._detectors.update(DETECTORS)

    # ------------------------------------------------------------------
    def register(
        self, spec: SinkSpec, detector: Optional[Detector] = None
    ) -> "TargetRegistry":
        """Add one sink spec (and optionally its rule's detector).

        Idempotent for identical specs; returns ``self`` for chaining.
        """
        if spec not in self._catalogue:
            self._catalogue.append(spec)
        if detector is not None:
            self.register_detector(detector, rule=spec.rule)
        return self

    def register_detector(
        self, detector: Detector, rule: Optional[str] = None
    ) -> "TargetRegistry":
        """Attach *detector* to a rule (default: the detector's own)."""
        rule = rule if rule is not None else detector.rule
        if not rule:
            raise ValueError("detector has no rule id")
        self._detectors[rule] = detector
        return self

    # ------------------------------------------------------------------
    @property
    def rules(self) -> tuple[str, ...]:
        """Every registered rule family, first-registration order."""
        return tuple(dict.fromkeys(spec.rule for spec in self._catalogue))

    @property
    def specs(self) -> tuple[SinkSpec, ...]:
        """Every registered sink spec, in registration order."""
        return tuple(self._catalogue)

    def specs_for(self, rules: Iterable[str]) -> tuple[SinkSpec, ...]:
        """The specs of the given rule families, registration order.

        Unknown rules contribute nothing (matching
        ``BackDroidConfig.sink_specs``); HTTP-facing validation rejects
        them earlier via :attr:`rules`.
        """
        wanted = set(rules)
        return tuple(s for s in self._catalogue if s.rule in wanted)

    def detector_for(self, rule: str) -> Optional[Detector]:
        """The detector registered for ``rule``, or None when absent."""
        return self._detectors.get(rule)

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable digest of every registered spec and detector.

        Feeds outcome-cache keys: a custom detector changes findings, so
        outcomes produced under one registry must never be served to
        another.
        """
        parts = [
            repr((s.rule, s.key, s.tracked_params)) for s in self._catalogue
        ]
        parts.extend(
            # Class identity plus instance state: two differently-
            # configured instances of one detector class must not share
            # an outcome-cache key.
            f"{rule}:{type(det).__module__}.{type(det).__qualname__}:"
            f"{sorted(vars(det).items())!r}"
            for rule, det in sorted(self._detectors.items())
        )
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]
