"""Unified telemetry: tracing, metrics, structured logs.

The service pipeline spans threads *and* processes (submit on the event
loop, dispatch on a lane thread, cold analysis in a forked worker), so
its observability layer has to be explicit about propagation:

* :mod:`repro.telemetry.tracing` — lightweight spans with
  ``trace_id``/``span_id``/parent links, wall + CPU time, and a
  serializable span *context* small enough to ride the worker pipe;
* :mod:`repro.telemetry.metrics` — a registry of named counters,
  gauges and histograms with Prometheus text exposition;
* :mod:`repro.telemetry.logs` — a JSON log formatter that stamps every
  record with the active trace/span id;
* :mod:`repro.telemetry.quantiles` — the one nearest-rank quantile
  helper shared by lane stats, the event-loop lag monitor and the
  histogram type (empty/one-sample windows report ``None``, not 0).
"""

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.quantiles import quantile
from repro.telemetry.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    render_span_tree,
    span,
    start_span,
)

__all__ = [
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_span",
    "quantile",
    "render_span_tree",
    "span",
    "start_span",
]
