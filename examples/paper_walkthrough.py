#!/usr/bin/env python3
"""A guided tour of the paper's three worked examples.

* Fig. 3 — the basic signature search on the LG TV Plus app: translating
  the callee signature to dexdump format, searching the plaintext,
  mapping the hit back to ``NetcastTVService$1.run()``.
* Fig. 4 — the advanced search: constructor search + forward object
  taint, returning the maintained call chain ending at
  ``Executor.execute``.
* Fig. 6 — the PalcoMP3 SSG: backward slicing across a constructor
  chain, a child-class invocation and an off-path ``<clinit>``, and the
  forward phase recovering ``new InetSocketAddress(null, 8089)``.

Run:  python examples/paper_walkthrough.py
"""

from repro.core import BackDroid, BackDroidConfig
from repro.core.forward import ForwardPropagation
from repro.core.slicer import BackwardSlicer
from repro.dex.types import MethodSignature
from repro.search.advanced import advanced_search
from repro.search.basic import basic_search
from repro.search.engine import CallerResolutionEngine
from repro.workload.paperapps import build_lg_tv_plus, build_palcomp3


def fig3_basic_search() -> None:
    print("=" * 72)
    print("Fig. 3 — basic signature search (LG TV Plus)")
    print("=" * 72)
    apk = build_lg_tv_plus()
    engine = CallerResolutionEngine(apk)
    callee = MethodSignature(
        "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
    )
    print(f"callee (Soot format) : {callee.to_soot()}")
    print(f"search signature     : {callee.to_dex()}")
    hits = engine.searcher.find_invocations(callee)
    for hit in hits:
        print(f"plaintext hit        : line {hit.line_no}: {hit.line.strip()[:74]}")
        print(f"caller method        : {hit.method.to_soot()}")
    sites = basic_search(engine.searcher, apk.full_pool, callee)
    for site in sites:
        print(f"call site            : statement #{site.stmt_index} of the caller")
    print()


def fig4_advanced_search() -> None:
    print("=" * 72)
    print("Fig. 4 — advanced search with forward object taint (LG TV Plus)")
    print("=" * 72)
    apk = build_lg_tv_plus()
    engine = CallerResolutionEngine(apk)
    callee = MethodSignature(
        "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
    )
    print(f"callee               : {callee.to_soot()}")
    print("direct signature search hits:",
          len(engine.searcher.find_invocations(callee)), "(as expected: 0)")
    resolved = advanced_search(engine.searcher, apk.full_pool, callee)
    for caller in resolved:
        print(f"constructor found in : {caller.method.to_soot()}")
        print("maintained call chain:")
        for link in caller.chain:
            print(f"   -> {link.method.to_soot()} [site #{link.site_index}]")
    print()


def fig6_ssg() -> None:
    print("=" * 72)
    print("Fig. 6 — the PalcoMP3 self-contained slicing graph")
    print("=" * 72)
    apk = build_palcomp3()
    driver = BackDroid(BackDroidConfig(sink_rules=("open-port",)))
    sites = [s for s in driver.find_sink_call_sites(apk)
             if s.spec.signature.name == "bind"]
    slicer = BackwardSlicer(apk)
    ssg = slicer.slice_sink(sites[0])
    print(ssg.render())
    facts = ForwardPropagation(apk, ssg).run()
    print(f"\nresolved bind() address: {facts[0]}")
    print("(paper: hostname=null from <init>(null, port); port 8089 from "
          "MP3LocalServer.<clinit>)")
    print()


def main() -> None:
    fig3_basic_search()
    fig4_advanced_search()
    fig6_ssg()


if __name__ == "__main__":
    main()
