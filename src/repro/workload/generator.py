"""The seeded synthetic-app generator.

Generates deterministic, self-consistent apps: a manifest, a set of
pattern instances (each with ground truth), and *filler code* that stands
in for the app's bulk.  Filler is reachable from the launcher activity
and fans out through virtual dispatch over a common base class — so a
whole-app analyzer must traverse and dispatch through all of it (cost
grows with app size), while BackDroid's targeted analysis never visits it
(cost grows with sink count).  This is exactly the asymmetry Sec. VI-B
and VI-D measure.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.dex.builder import AppBuilder
from repro.workload.patterns import (
    PATTERN_BUILDERS,
    GroundTruth,
    PatternContext,
    PatternSpec,
)


@dataclass(frozen=True)
class LibrarySpec:
    """A deterministic recipe for one embeddable library.

    Library code is generated from the library's *own* package and seed
    — never from the embedding app's — so every app that lists the same
    ``LibrarySpec`` embeds byte-identical classes.  That is what the
    artifact store's cross-app shard dedup exploits: the library's
    class group hashes to the same shard key in every app.
    """

    package: str
    seed: int = 0
    classes: int = 8
    methods_per_class: int = 4


@dataclass(frozen=True)
class AppSpec:
    """A deterministic recipe for one synthetic app."""

    package: str
    seed: int = 0
    patterns: tuple[PatternSpec, ...] = ()
    filler_classes: int = 10
    methods_per_filler: int = 6
    #: Shared libraries embedded verbatim (see :class:`LibrarySpec`).
    libraries: tuple[LibrarySpec, ...] = ()
    year: int = 2018
    size_mb: float = 0.0
    installs: int = 1_000_000


def spec_fingerprint(spec: AppSpec) -> str:
    """A stable digest of one app recipe.

    Specs are frozen dataclasses of primitives and
    :class:`~repro.workload.patterns.PatternSpec` tuples, so their repr
    is deterministic across processes and runs — the fingerprint lets
    the artifact store map a recipe to the disassembly key its generated
    app hashes to, without generating the app.
    """
    return hashlib.sha256(repr(spec).encode()).hexdigest()[:16]


@dataclass
class GeneratedApp:
    """A generated app plus its ground-truth labels."""

    apk: Apk
    spec: AppSpec
    truths: list[GroundTruth] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def truly_vulnerable(self) -> bool:
        return any(t.truly_vulnerable for t in self.truths)

    @property
    def has_hazard(self) -> bool:
        return any(t.pattern == "hazard_dangling" for t in self.truths)

    def expected_backdroid_vulnerable(self) -> bool:
        return any(t.expect_backdroid for t in self.truths)

    def expected_amandroid_vulnerable(self) -> bool:
        """Mechanism-level expectation, ignoring timeouts.

        An injected hazard makes the whole baseline run fail, masking
        every detection in the app.
        """
        if self.has_hazard:
            return False
        return any(t.expect_amandroid for t in self.truths)

    def sink_call_count(self) -> int:
        """Pattern instances that planted a sink call."""
        return sum(1 for t in self.truths if t.rule is not None)


def _build_filler(
    app: AppBuilder, manifest: Manifest, package: str, spec: AppSpec,
    rng: random.Random,
) -> None:
    """Reachable bulk code with CHA-hostile virtual dispatch.

    ``FillerK`` classes extend one shared ``BaseTask`` and override
    ``step()``; the launcher walks the chain through base-typed calls, so
    a class-hierarchy analysis resolves each dispatch against *every*
    filler subclass.
    """
    if spec.filler_classes <= 0:
        return
    base_name = f"{package}.gen.BaseTask"
    base = app.new_class(base_name)
    base.default_constructor()
    base_step = base.method("step", params=["int"], returns="int")
    base_step.this()
    p = base_step.param(0)
    base_step.return_value(p)

    class_names = [f"{package}.gen.Filler{index}" for index in range(spec.filler_classes)]
    for index, name in enumerate(class_names):
        filler = app.new_class(name, superclass=base_name)
        filler.default_constructor()
        step = filler.method("step", params=["int"], returns="int")
        step.this()
        arg = step.param(0)
        value = step.binop("+", arg, rng.randint(1, 99))
        step.return_value(value)
        for m_index in range(spec.methods_per_filler):
            method = filler.method(f"work{m_index}", params=["int"], returns="int",
                                   static=True)
            arg = method.param(0)
            acc = method.binop("*", arg, rng.randint(2, 9))
            acc = method.binop("+", acc, rng.randint(1, 999))
            if m_index + 1 < spec.methods_per_filler:
                nxt = method.invoke_static(name, f"work{m_index + 1}", args=[acc],
                                           params=["int"], returns="int")
                method.return_value(nxt)
            else:
                # Cross-class dispatch through the base type.
                obj = method.new_init(
                    class_names[(index + 1) % len(class_names)]
                )
                up = method.cast(base_name, obj)
                out = method.invoke_virtual(up, base_name, "step", args=[acc],
                                            params=["int"], returns="int")
                method.return_value(out)

    launcher_name = f"{package}.gen.LauncherActivity"
    launcher = app.new_class(launcher_name, superclass="android.app.Activity")
    launcher.default_constructor()
    on_create = launcher.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    seed_value = on_create.const_int(rng.randint(1, 1000))
    for name in class_names:
        on_create.invoke_static(name, "work0", args=[seed_value],
                                params=["int"], returns="int")
    on_create.return_void()
    manifest.register(
        launcher_name, ComponentKind.ACTIVITY, exported=True,
        actions=["android.intent.action.MAIN"],
    )


def _build_library(app: AppBuilder, lib: LibrarySpec) -> None:
    """Embed one shared library's classes, app-independently.

    The class bodies are driven by a library-local RNG seeded from the
    library spec alone, and every emitted name/signature/string refers
    only to the library's own package — so the rendered class group
    (and hence its store shard) is identical in every embedding app.
    """
    if lib.classes <= 0:
        return
    rng = random.Random(f"{lib.package}:{lib.seed}")
    base_name = f"{lib.package}.core.LibBase"
    base = app.new_class(base_name)
    base.default_constructor()
    base_step = base.method("transform", params=["int"], returns="int")
    base_step.this()
    p = base_step.param(0)
    base_step.return_value(p)

    class_names = [
        f"{lib.package}.core.Component{index}" for index in range(lib.classes)
    ]
    for index, name in enumerate(class_names):
        component = app.new_class(name, superclass=base_name)
        component.default_constructor()
        step = component.method("transform", params=["int"], returns="int")
        step.this()
        arg = step.param(0)
        value = step.binop("+", arg, rng.randint(1, 99))
        step.return_value(value)
        for m_index in range(lib.methods_per_class):
            method = component.method(
                f"stage{m_index}", params=["int"], returns="int", static=True
            )
            arg = method.param(0)
            acc = method.binop("*", arg, rng.randint(2, 9))
            if m_index + 1 < lib.methods_per_class:
                nxt = method.invoke_static(
                    name, f"stage{m_index + 1}", args=[acc],
                    params=["int"], returns="int",
                )
                method.return_value(nxt)
            else:
                # Library-internal cross-class dispatch, mirroring real
                # SDKs' intra-library call graphs.
                obj = method.new_init(
                    class_names[(index + 1) % len(class_names)]
                )
                up = method.cast(base_name, obj)
                out = method.invoke_virtual(
                    up, base_name, "transform", args=[acc],
                    params=["int"], returns="int",
                )
                method.return_value(out)


def generate_app(spec: AppSpec) -> GeneratedApp:
    """Generate one app deterministically from its spec."""
    rng = random.Random(spec.seed)
    app = AppBuilder()
    manifest = Manifest(package=spec.package)
    context = PatternContext(rng=rng)
    truths: list[GroundTruth] = []

    for index, pattern in enumerate(spec.patterns):
        builder = PATTERN_BUILDERS[pattern.name]
        namespace = f"{spec.package}.p{index}"
        truths.append(builder(app, manifest, namespace, context, pattern.insecure))

    _build_filler(app, manifest, spec.package, spec, rng)
    for library in spec.libraries:
        _build_library(app, library)

    apk = Apk(
        package=spec.package,
        classes=app.build(),
        manifest=manifest,
        size_mb=spec.size_mb,
        year=spec.year,
        installs=spec.installs,
    )
    if apk.size_mb <= 0:
        # Rough DEX-size model: ~3 KB per IR statement keeps generated
        # apps in the paper's MB range.
        apk.size_mb = round(apk.code_units() * 0.003, 1)
    return GeneratedApp(apk=apk, spec=spec, truths=truths)
