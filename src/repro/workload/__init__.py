"""Synthetic workloads: the stand-in for the paper's Google-Play datasets.

* :mod:`repro.workload.paperapps` — hand-authored miniatures of the three
  real apps the paper uses as running examples (LG TV Plus for Figs. 3-4,
  Heyzap for Sec. IV-C, PalcoMP3 for Fig. 6);
* :mod:`repro.workload.patterns` — the code-shape templates the paper's
  search mechanisms exist for (async flows, callbacks, ICC, static
  initializers, skipped libraries, dead code, ...), each with ground
  truth attached;
* :mod:`repro.workload.generator` — the seeded app synthesizer;
* :mod:`repro.workload.corpus` — Table-I-style year corpora and the
  144-app benchmark set.
"""

from repro.workload.corpus import (
    TABLE1_APP_SIZES,
    CorpusApp,
    benchmark_app_spec,
    benchmark_corpus,
    sample_year_corpus,
    year_size_distribution,
)
from repro.workload.generator import AppSpec, GeneratedApp, generate_app
from repro.workload.paperapps import build_heyzap, build_lg_tv_plus, build_palcomp3
from repro.workload.patterns import (
    PATTERN_BUILDERS,
    GroundTruth,
    PatternContext,
    PatternSpec,
)

__all__ = [
    "AppSpec",
    "CorpusApp",
    "GeneratedApp",
    "GroundTruth",
    "PATTERN_BUILDERS",
    "PatternContext",
    "PatternSpec",
    "TABLE1_APP_SIZES",
    "benchmark_app_spec",
    "benchmark_corpus",
    "build_heyzap",
    "build_lg_tv_plus",
    "build_palcomp3",
    "generate_app",
    "sample_year_corpus",
    "year_size_distribution",
]
