"""The HTTP front end: an asyncio JSON API over the scheduler.

Endpoints (all JSON)::

    POST   /v1/jobs        submit an app spec -> 202 + the job record
                           (503 while the server is draining)
    GET    /v1/jobs/<id>   one job's status (and result once done)
    DELETE /v1/jobs/<id>   cancel: queued jobs cancel immediately,
                           running cold jobs' worker processes are
                           terminated, running warm jobs are marked
                           ``cancelling``
    GET    /v1/jobs        every retained job, submission order
    GET    /v1/stats       lanes, job counts, warm-hit rate, store
                           counters, the metrics registry snapshot,
                           plus the front end's own health
                           (event-loop lag, draining flag)
    GET    /metrics        the same instruments as Prometheus text
                           (404 when the scheduler was built with
                           metrics disabled)
    GET    /healthz        liveness

``GET /v1/jobs/<id>?trace=1`` additionally returns the job's collected
span tree under ``"trace"`` (see :mod:`repro.telemetry.tracing`).

A ``POST /v1/jobs`` body may carry per-job analysis overrides alongside
the app spec — ``rules`` (list of rule ids), ``backend``, ``max_frames``
and ``hierarchy`` — which become an
:class:`~repro.api.request.AnalysisRequest` for that job only.
Differently-targeted submissions of one app never share a result, but
they do share the scheduler's warm per-app session underneath.

Three layers, so the protocol work is written once:

* :class:`ServiceAPI` — the transport-agnostic router.  Every endpoint
  is a pure ``(method, path, body) -> (status, payload, close)``
  function over the scheduler; it also owns the *draining* flag that
  turns submissions away with 503 during graceful shutdown.
* :class:`AnalysisServer` — the production front end: a stdlib
  ``asyncio.start_server`` event loop on a daemon thread.  Connection
  handling (parsing, keep-alive, slow-client timeouts) is non-blocking
  coroutine work; each parsed request is bridged to :class:`ServiceAPI`
  via ``loop.run_in_executor`` so queue locks and store probes never
  stall the loop.  With the scheduler's process cold lane, the service
  interpreter only ever runs event-loop bookkeeping and warm
  mmap-backed restores — cold CPU work lives in worker processes — so
  warm tail latency no longer inflates under cold load.  A lag monitor
  samples the event loop's scheduling delay and reports percentiles
  under ``stats()["server"]``.
* :class:`ThreadedAnalysisServer` — the previous
  ``http.server.ThreadingHTTPServer`` stack (one thread per
  connection), kept as the comparison baseline for
  ``benchmarks/bench_sustained_traffic.py`` and for environments where
  a thread-per-connection model is easier to reason about.  Same
  :class:`ServiceAPI`, same endpoints, same lifecycle methods.

:class:`ServiceClient` is the matching ``urllib`` client used by tests,
CI smoke checks and scripts; it retries connection-refused/reset errors
with bounded exponential backoff (the async server restarts workers and
may be mid-listen during deploys), while HTTP errors and timeouts
surface immediately.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from collections import deque
from http.client import responses as _http_reasons
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib import request as urlrequest
from urllib.error import HTTPError, URLError

from repro.api.registry import builtin_rules
from repro.api.request import AnalysisRequest, analysis_request_from_payload
from repro.service.jobs import (
    CANCEL_CONFLICT,
    CANCEL_TERMINAL,
    CANCEL_UNKNOWN,
    TERMINAL_STATES,
)
from repro.service.scheduler import StoreAwareScheduler
from repro.telemetry.quantiles import quantile
from repro.workload.corpus import app_spec_from_request

#: Content type of the ``GET /metrics`` exposition body.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Event-loop lag histogram buckets (seconds): lag is healthy in the
#: sub-millisecond range and pathological past tens of milliseconds.
LAG_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)

#: Largest request body a submission may carry (a spec is tiny; anything
#: bigger is a client error, not a payload to buffer).
MAX_BODY_BYTES = 64 * 1024

#: Per-read timeouts on the async path: a client that stalls mid-request
#: (or goes quiet between keep-alive requests) must not pin a connection
#: handler forever.
IO_TIMEOUT_SECONDS = 30.0

#: How often the lag monitor samples the event loop's scheduling delay.
LAG_SAMPLE_INTERVAL = 0.05


class ServiceAPI:
    """The transport-agnostic request router over one scheduler.

    ``handle`` maps ``(method, path, body)`` to
    ``(status, json_payload, close_connection)`` — both HTTP front ends
    delegate here, so validation, error shapes and the draining
    lifecycle are defined exactly once.  ``extra_stats`` (when given)
    contributes the front end's own health under ``/v1/stats``'s
    ``server`` key.
    """

    def __init__(
        self,
        scheduler: StoreAwareScheduler,
        extra_stats: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.scheduler = scheduler
        self.extra_stats = extra_stats
        #: While True (graceful shutdown in progress) submissions are
        #: rejected with 503; reads and cancels keep working so clients
        #: can collect results from the drain.
        self.draining = False
        self._m_requests = (
            scheduler.metrics.counter(
                "backdroid_http_requests_total",
                "HTTP requests served, by method and status.",
                ("method", "status"),
            )
            if scheduler.metrics is not None
            else None
        )

    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> tuple[int, object, bool]:
        """Route one request; returns ``(status, payload, close)``.

        ``payload`` is a JSON-able dict for every endpoint except
        ``GET /metrics``, whose payload is the Prometheus text body (a
        ``str`` — transports type the response accordingly).  ``close``
        asks the transport to drop the connection after responding —
        set on every error so a keep-alive client never parses leftover
        bytes as its next response.
        """
        path, _, query_text = path.partition("?")
        normalized = path.rstrip("/") or "/"
        query = {}
        for pair in query_text.split("&"):
            name, sep, value = pair.partition("=")
            if name:
                query[name] = value if sep else "1"
        if method == "GET":
            result = self._get(normalized, query)
        elif method == "POST":
            result = self._post(normalized, body)
        elif method == "DELETE":
            result = self._delete(normalized)
        else:
            result = 501, {"error": f"unsupported method {method!r}"}, True
        if self._m_requests is not None:
            self._m_requests.inc(method=method, status=str(result[0]))
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _flag(query: dict, name: str) -> bool:
        return query.get(name, "").lower() in ("1", "true", "yes")

    def _get(self, path: str, query: dict) -> tuple[int, object, bool]:
        scheduler = self.scheduler
        if path == "/healthz":
            return 200, {"ok": True}, False
        if path == "/metrics":
            if scheduler.metrics is None:
                return (
                    404,
                    {"error": "metrics are disabled on this service"},
                    True,
                )
            return 200, scheduler.metrics.render_prometheus(), False
        if path == "/v1/stats":
            payload = scheduler.stats()
            payload["server"] = (
                self.extra_stats() if self.extra_stats is not None else None
            )
            return 200, payload, False
        if path == "/v1/jobs":
            return 200, {"jobs": scheduler.queue.snapshots()}, False
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            snapshot = scheduler.queue.snapshot(
                job_id, include_trace=self._flag(query, "trace")
            )
            if snapshot is None:
                return 404, {"error": f"unknown or evicted job {job_id!r}"}, True
            return 200, snapshot, False
        return 404, {"error": f"no such endpoint {path!r}"}, True

    def _post(
        self, path: str, body: Optional[bytes]
    ) -> tuple[int, dict, bool]:
        if path != "/v1/jobs":
            return 404, {"error": f"no such endpoint {path!r}"}, True
        if self.draining:
            return (
                503,
                {"error": "service is draining; not accepting submissions"},
                True,
            )
        if not body or len(body) > MAX_BODY_BYTES:
            return (
                400,
                {"error": "submission body required (a small JSON object)"},
                True,
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return 400, {"error": "submission body is not valid JSON"}, True
        scheduler = self.scheduler
        try:
            spec = app_spec_from_request(payload)
            request = analysis_request_from_payload(
                payload,
                known_rules=self._known_rules(),
                # Overrides layer onto the *service's* configuration, so
                # a body naming only e.g. max_frames keeps the
                # operator's rule selection.
                defaults=AnalysisRequest.from_config(scheduler.config),
            )
        except ValueError as exc:
            return 400, {"error": str(exc)}, True
        parent_trace = payload.get("trace")
        if parent_trace is not None and not (
            isinstance(parent_trace, dict)
            and isinstance(parent_trace.get("trace_id"), str)
            and isinstance(parent_trace.get("span_id"), str)
        ):
            return (
                400,
                {
                    "error": (
                        "trace must be a serialized span context: "
                        '{"trace_id": ..., "span_id": ...}'
                    )
                },
                True,
            )
        try:
            job = scheduler.submit(
                spec, request=request, parent_trace=parent_trace
            )
        except RuntimeError as exc:  # shut down mid-flight
            return 503, {"error": str(exc)}, True
        # A fast-lane job can finish — and, under a tiny retention
        # bound, even be evicted — before this snapshot; the job record
        # itself is always a valid response body.
        snapshot = scheduler.queue.snapshot(job.id)
        return 202, snapshot if snapshot is not None else job.as_dict(), False

    def _delete(self, path: str) -> tuple[int, dict, bool]:
        if not path.startswith("/v1/jobs/"):
            return 404, {"error": f"no such endpoint {path!r}"}, True
        job_id = path[len("/v1/jobs/"):]
        job, disposition = self.scheduler.cancel(job_id)
        if disposition == CANCEL_UNKNOWN:
            return 404, {"error": f"unknown or evicted job {job_id!r}"}, True
        if disposition == CANCEL_TERMINAL:
            return 409, {"error": f"job {job_id} already {job.state}"}, True
        if disposition == CANCEL_CONFLICT:
            return (
                409,
                {
                    "error": (
                        f"job {job_id} is shared by coalesced submissions; "
                        f"cancel those followers instead"
                    )
                },
                True,
            )
        # cancelled now, or cancelling while the worker is reaped
        snapshot = self.scheduler.queue.snapshot(job_id)
        return 200, snapshot if snapshot is not None else job.as_dict(), False

    def _known_rules(self) -> tuple[str, ...]:
        """The rule ids submissions may target on this service."""
        if self.scheduler.registry is not None:
            return self.scheduler.registry.rules
        return builtin_rules()


class AnalysisServer:
    """A running analysis service: scheduler + asyncio HTTP front end.

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`address` — the listening socket is bound eagerly in the
    constructor, so the address is authoritative before :meth:`start`.
    The event loop runs on a daemon thread, so ``serve_forever``
    semantics stay with the caller (the CLI blocks on :meth:`join`,
    tests just use the context manager).

    Request handling is non-blocking: coroutines own the sockets
    (parsing, keep-alive, slow-client timeouts) and every parsed
    request is dispatched to :class:`ServiceAPI` on the default
    executor, so a slow store probe never stalls other connections.
    """

    def __init__(
        self,
        scheduler: StoreAwareScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        """Bind the listener (not yet serving) over ``scheduler``."""
        self.scheduler = scheduler
        self.api = ServiceAPI(scheduler, extra_stats=self._server_stats)
        self._sock = socket.create_server((host, port), backlog=128)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        #: Recent event-loop scheduling delays (seconds over the
        #: monitor's intended sleep), for ``stats()["server"]``.
        self._lag_samples: deque = deque(maxlen=512)
        self._m_lag = (
            scheduler.metrics.histogram(
                "backdroid_event_loop_lag_seconds",
                "Event-loop scheduling delay per lag-monitor sample.",
                buckets=LAG_BUCKETS,
            )
            if scheduler.metrics is not None
            else None
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative even for ``port=0``."""
        name = self._sock.getsockname()
        return name[0], name[1]

    # ------------------------------------------------------------------
    def start(self) -> "AnalysisServer":
        """Start serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="backdroid-asyncio", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve())
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    async def _serve(self) -> None:
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        except Exception as exc:  # bind/registration failure
            self._startup_error = exc
            self._started.set()
            return
        lag_task = asyncio.ensure_future(self._monitor_loop_lag())
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            lag_task.cancel()
            server.close()
            await server.wait_closed()
            current = asyncio.current_task()
            pending = [t for t in asyncio.all_tasks() if t is not current]
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        """One client connection: parse, dispatch, respond, keep alive."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(), timeout=IO_TIMEOUT_SECONDS
                    )
                except (asyncio.TimeoutError, ConnectionError):
                    return
                if not request_line:
                    return  # client closed the connection
                if not request_line.strip():
                    continue  # stray CRLF between pipelined requests
                parts = request_line.decode("latin-1", "replace").split()
                if len(parts) != 3:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"},
                        close=True,
                    )
                    return
                method, target, version = parts
                headers = await self._read_headers(reader)
                if headers is None:
                    return
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "bad Content-Length"},
                        close=True,
                    )
                    return
                if length < 0 or length > MAX_BODY_BYTES:
                    # Refuse without buffering: the unread body makes
                    # the connection unusable, so it is dropped.
                    await self._respond(
                        writer,
                        400,
                        {
                            "error": (
                                "submission body required "
                                "(a small JSON object)"
                            )
                        },
                        close=True,
                    )
                    return
                body = b""
                if length:
                    try:
                        body = await asyncio.wait_for(
                            reader.readexactly(length),
                            timeout=IO_TIMEOUT_SECONDS,
                        )
                    except (
                        asyncio.TimeoutError,
                        asyncio.IncompleteReadError,
                        ConnectionError,
                    ):
                        return
                # Route off-loop: handlers take queue locks and probe
                # the store; neither may stall other connections.
                status, payload, close = await loop.run_in_executor(
                    None, self.api.handle, method, target, body
                )
                close = (
                    close
                    or version == "HTTP/1.0"
                    or headers.get("connection", "").lower() == "close"
                )
                ok = await self._respond(writer, status, payload, close=close)
                if close or not ok:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_headers(reader) -> Optional[dict]:
        """Header block -> lowercase dict, or None on timeout/EOF."""
        headers: dict[str, str] = {}
        while True:
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=IO_TIMEOUT_SECONDS
                )
            except (asyncio.TimeoutError, ConnectionError):
                return None
            if not line:
                return None
            if line in (b"\r\n", b"\n"):
                return headers
            name, sep, value = line.decode("latin-1", "replace").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _respond(writer, status: int, payload, close: bool) -> bool:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_http_reasons.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        if close:
            head += "Connection: close\r\n"
        head += "\r\n"
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False

    # ------------------------------------------------------------------
    async def _monitor_loop_lag(self) -> None:
        """Sample how late the loop wakes a timed sleep (GIL pressure).

        On the threaded stack this is the number that blows up under
        cold load; with the process cold lane it stays flat — the
        metric that makes the contention fix observable in production,
        not just in benchmarks.
        """
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(LAG_SAMPLE_INTERVAL)
            lag = max(0.0, loop.time() - before - LAG_SAMPLE_INTERVAL)
            self._lag_samples.append(lag)
            if self._m_lag is not None:
                self._m_lag.observe(lag)

    def _server_stats(self) -> dict:
        # Shared quantile helper: sub-two-sample windows report null
        # (a fresh server has no lag distribution yet, not a zero one).
        samples = sorted(self._lag_samples)
        return {
            "loop": "asyncio",
            "draining": self.api.draining,
            "event_loop_lag_seconds": {
                "p50": quantile(samples, 0.50),
                "p99": quantile(samples, 0.99),
                "max": quantile(samples, 1.0),
            },
        }

    # ------------------------------------------------------------------
    def join(self) -> None:
        """Block the caller until the event-loop thread exits."""
        if self._thread is not None:
            self._thread.join()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting submissions and wait for in-flight jobs.

        Sets the 503-on-submit draining flag (reads and cancels keep
        working), then blocks until every queued/running job reaches a
        terminal state or *timeout* elapses.  Returns True when the
        queue went idle — the caller then shuts down with
        ``drain=True``; on False, ``drain=False`` abandons the stragglers.
        """
        self.api.draining = True
        return self.scheduler.queue.wait_idle(timeout)

    def shutdown(self, drain: bool = True) -> None:
        """Stop the listener, then (with ``drain``) finish queued jobs.

        Ordering matters: closing the listener first guarantees no new
        submissions race the drain, so every job accepted before
        shutdown reaches a terminal state.  Safe on a never-started
        server (only the bound socket is released).
        """
        if self._thread is not None:
            loop, stop = self._loop, self._stop
            if loop is not None and stop is not None:
                try:
                    loop.call_soon_threadsafe(stop.set)
                except RuntimeError:
                    pass  # loop already closed
            self._thread.join()
            self._thread = None
        else:
            self._sock.close()
        self.scheduler.shutdown(wait=drain)

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)


class _ServiceHandler(BaseHTTPRequestHandler):
    """Thin ``http.server`` adapter over :class:`ServiceAPI`."""

    server: "_ServiceHTTPServer"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that stalls mid-request (e.g. announces
    #: a Content-Length it never sends) must not pin a handler thread
    #: forever; ``handle_one_request`` turns the TimeoutError into a
    #: dropped connection.
    timeout = 30

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter (see ``/v1/stats``)."""

    def _send(self, status: int, payload, close: bool) -> None:
        if close:
            self.close_connection = True
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _route(self, method: str, body: Optional[bytes] = None) -> None:
        status, payload, close = self.server.api.handle(
            method, self.path, body
        )
        self._send(status, payload, close)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._route("GET")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._route("DELETE")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            length = int(self.headers.get("Content-Length", "0") or "0")
        except ValueError:
            self._send(400, {"error": "bad Content-Length"}, close=True)
            return
        if length < 0 or length > MAX_BODY_BYTES:
            self._send(
                400,
                {"error": "submission body required (a small JSON object)"},
                close=True,
            )
            return
        body = self.rfile.read(length) if length else b""
        self._route("POST", body)


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Service restarts must not wait out TIME_WAIT sockets.
    allow_reuse_address = True

    def __init__(self, address, api: ServiceAPI) -> None:
        """Bind ``address`` and attach the API the handlers route to."""
        super().__init__(address, _ServiceHandler)
        self.api = api


class ThreadedAnalysisServer:
    """The thread-per-connection front end (comparison baseline).

    Same :class:`ServiceAPI`, endpoints and lifecycle as
    :class:`AnalysisServer`, served by ``ThreadingHTTPServer`` — the
    pre-asyncio stack, kept for the sustained-traffic benchmark's
    threaded-vs-async comparison and as a fallback front end
    (``backdroid serve --loop threaded``).
    """

    def __init__(
        self,
        scheduler: StoreAwareScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.api = ServiceAPI(scheduler, extra_stats=self._server_stats)
        self._http = _ServiceHTTPServer((host, port), self.api)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative even for ``port=0``."""
        return self._http.server_address[0], self._http.server_address[1]

    def _server_stats(self) -> dict:
        return {
            "loop": "threaded",
            "draining": self.api.draining,
            #: No event loop to lag — the analogous pressure shows up as
            #: per-request latency instead (the benchmark measures it).
            "event_loop_lag_seconds": None,
        }

    # ------------------------------------------------------------------
    def start(self) -> "ThreadedAnalysisServer":
        """Start serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="backdroid-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def join(self) -> None:
        """Block the caller until the listener thread exits."""
        if self._thread is not None:
            self._thread.join()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """503 new submissions, wait for in-flight jobs (see
        :meth:`AnalysisServer.drain`)."""
        self.api.draining = True
        return self.scheduler.queue.wait_idle(timeout)

    def shutdown(self, drain: bool = True) -> None:
        """Stop the listener, then (with ``drain``) finish queued jobs."""
        if self._thread is not None:
            self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.scheduler.shutdown(wait=drain)

    def __enter__(self) -> "ThreadedAnalysisServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)


class ServiceClient:
    """Minimal ``urllib`` client for the service API (tests, CI, scripts).

    Every request carries ``timeout``; connection-establishment
    failures (refused/reset — a restarting or still-binding server) are
    retried up to ``retries`` times with exponential backoff starting
    at ``backoff_seconds``.  HTTP error statuses and read timeouts are
    *not* retried — they mean the server answered (or accepted) the
    request, and submissions are not idempotent.

    With multiple ``endpoints`` (a cluster of nodes, or a front end
    plus direct node fallbacks), a connection failure **rotates** to
    the next endpoint immediately — a reset against a draining node is
    the next host's problem, not a reason to burn backoff budget —
    and only once every endpoint has failed in a row does the client
    sleep and consume a retry.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 10.0,
        retries: int = 2,
        backoff_seconds: float = 0.1,
        endpoints: Optional[list] = None,
    ) -> None:
        """Point the client at ``host:port`` — or a list of
        ``(host, port)`` ``endpoints`` tried in rotation."""
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if endpoints:
            self.endpoints = [(h, int(p)) for h, p in endpoints]
        elif host is not None and port is not None:
            self.endpoints = [(host, int(port))]
        else:
            raise ValueError("pass host/port or a non-empty endpoints list")
        self._endpoint_index = 0
        self.timeout = timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        #: Connection-error retries performed over this client's
        #: lifetime (observability for tests and scripts).
        self.retries_used = 0
        #: Endpoint rotations after connection failures (failovers).
        self.rotations = 0

    @property
    def base_url(self) -> str:
        host, port = self.endpoints[self._endpoint_index]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    @staticmethod
    def _is_connection_error(exc: Exception) -> bool:
        """True for errors where the request never reached the server."""
        if isinstance(exc, ConnectionError):
            return True
        if isinstance(exc, URLError):
            # Timeouts (socket.timeout is TimeoutError) mean the server
            # may have the request — never resubmit those.
            return isinstance(
                exc.reason, ConnectionError
            ) and not isinstance(exc.reason, TimeoutError)
        return False

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        retries: Optional[int] = None,
        raw: bool = False,
    ) -> tuple[int, object]:
        """One request; ``retries`` overrides the client default (0 for
        the retry-free read paths) and ``raw`` returns the body text
        instead of parsed JSON (the ``/metrics`` exposition)."""
        max_retries = self.retries if retries is None else retries
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempt = 0
        failed_in_row = 0
        while True:
            # Rebuilt per attempt: a rotation changes the base url.
            req = urlrequest.Request(
                self.base_url + path, data=data, headers=headers,
                method=method,
            )
            try:
                with urlrequest.urlopen(req, timeout=self.timeout) as response:
                    body = response.read()
                    if raw:
                        return response.status, body.decode("utf-8", "replace")
                    return response.status, json.loads(body or b"{}")
            except HTTPError as exc:
                body = exc.read()
                if raw:
                    return exc.code, body.decode("utf-8", "replace")
                try:
                    return exc.code, json.loads(body or b"{}")
                except json.JSONDecodeError:
                    return exc.code, {"error": body.decode("utf-8", "replace")}
            except (URLError, ConnectionError) as exc:
                if not self._is_connection_error(exc):
                    raise
                failed_in_row += 1
                if len(self.endpoints) > 1:
                    self._endpoint_index = (
                        self._endpoint_index + 1
                    ) % len(self.endpoints)
                    self.rotations += 1
                    if failed_in_row < len(self.endpoints):
                        continue  # next endpoint, no backoff consumed
                if attempt >= max_retries:
                    raise
                time.sleep(self.backoff_seconds * (2 ** attempt))
                attempt += 1
                self.retries_used += 1
                failed_in_row = 0

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` liveness payload (``{\"ok\": true}``)."""
        return self._request("GET", "/healthz")[1]

    def submit(self, request_payload: dict) -> dict:
        """Submit a spec; raises ``ValueError`` on a client error."""
        status, payload = self._request("POST", "/v1/jobs", request_payload)
        if status >= 400:
            raise ValueError(payload.get("error", f"HTTP {status}"))
        return payload

    def job(self, job_id: str, trace: bool = False) -> Optional[dict]:
        """One job's snapshot, or None for unknown/evicted ids.  Pass
        ``trace=True`` to include the recorded span tree (``?trace=1``)."""
        path = f"/v1/jobs/{job_id}" + ("?trace=1" if trace else "")
        status, payload = self._request("GET", path)
        return None if status == 404 else payload

    def cancel(self, job_id: str) -> dict:
        """Cancel a job; raises ``KeyError`` on unknown ids and
        ``ValueError`` when the job cannot be cancelled (already
        terminal, or shared by coalesced submissions)."""
        status, payload = self._request("DELETE", f"/v1/jobs/{job_id}")
        if status == 404:
            raise KeyError(f"unknown or evicted job {job_id!r}")
        if status >= 400:
            raise ValueError(payload.get("error", f"HTTP {status}"))
        return payload

    def jobs(self) -> list[dict]:
        """Every retained job snapshot, in submission order."""
        return self._request("GET", "/v1/jobs")[1]["jobs"]

    def stats(self) -> dict:
        """The ``/v1/stats`` payload: lanes, jobs, warm rate, store,
        and (when enabled) the embedded metrics snapshot.  Read-only
        observability path: never retried, so a probe during shutdown
        fails fast instead of backing off."""
        return self._request("GET", "/v1/stats", retries=0)[1]

    def metrics(self) -> str:
        """The raw Prometheus exposition text from ``/metrics``.
        Retry-free like :meth:`stats`; raises ``ValueError`` when the
        server runs with metrics disabled (HTTP 404)."""
        status, body = self._request("GET", "/metrics", retries=0, raw=True)
        if status >= 400:
            raise ValueError(f"HTTP {status}: {body.strip()}")
        return body

    def wait(
        self, job_id: str, timeout: float = 30.0, poll_seconds: float = 0.05
    ) -> dict:
        """Poll a job to a terminal state over HTTP."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot is None:
                raise KeyError(f"unknown or evicted job {job_id!r}")
            if snapshot["state"] in TERMINAL_STATES:
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)
