"""Cross-app shard dedup: partitioning, sharing, refcounted gc, parity.

The contracts under test, in the order the satellite checklist names
them: two apps embedding one library persist its shard exactly once; gc
never sweeps a shard any live manifest still references; a manifest
pointing at a missing shard reads as a miss (and the index path patches
only the damaged group); and a shard-composed index is byte-identical
to a freshly built one.
"""

import os
import time

import pytest

from repro.core import BackDroidConfig, analyze_spec, run_batch
from repro.search.backends.indexed import TokenIndex
from repro.store import (
    ArtifactStore,
    group_label,
    partition_disassembly,
    shard_key,
    store_key,
)
from repro.store.artifacts import FORMAT_VERSION
from repro.store.sharding import compose_index, fold_group, shard_payload
from repro.workload.generator import AppSpec, LibrarySpec, generate_app
from repro.workload.paperapps import build_heyzap, build_lg_tv_plus

SHARED_LIB = LibrarySpec(
    package="org.sharedsdk", seed=7, classes=10, methods_per_class=5
)


def _app(package, seed, libraries=(SHARED_LIB,)):
    return AppSpec(
        package=package, seed=seed, libraries=libraries, filler_classes=4
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestPartitioning:
    def test_groups_tile_the_class_sections(self):
        disassembly = generate_app(_app("com.alpha", 1)).apk.disassembly
        groups = partition_disassembly(disassembly)
        assert len(groups) >= 2  # the app's own prefix plus the library
        spans = disassembly.class_spans
        assert groups[0].start_line == spans[0].start_line
        assert groups[-1].end_line == spans[-1].end_line
        for first, second in zip(groups, groups[1:]):
            assert first.end_line == second.start_line
        assert {g.label for g in groups} == {
            group_label(s.class_name) for s in spans
        }

    def test_every_token_lands_in_exactly_one_group(self):
        disassembly = build_lg_tv_plus().disassembly
        groups = partition_disassembly(disassembly)
        recomposed = [
            (g.start_line + rel, kind, text)
            for g in groups
            for rel, kind, text in g.tokens
        ]
        assert recomposed == [
            (t.line_no, t.kind, t.text) for t in disassembly.tokens
        ]

    def test_spanless_disassembly_degrades_to_one_group(self):
        disassembly = build_heyzap().disassembly
        disassembly.class_spans = []
        (group,) = partition_disassembly(disassembly)
        assert group.label == "app"
        assert group.start_line == 0
        assert group.line_count == len(disassembly.lines)
        assert len(group.tokens) == len(disassembly.tokens)

    def test_shard_key_is_position_independent(self):
        # The same library lands at different absolute lines in each
        # app, yet hashes to the same shard.
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        two = generate_app(
            AppSpec(package="com.zulu", seed=9, libraries=(SHARED_LIB,),
                    filler_classes=9)
        ).apk.disassembly
        lib_one = next(
            g for g in partition_disassembly(one) if g.label == "org.sharedsdk"
        )
        lib_two = next(
            g for g in partition_disassembly(two) if g.label == "org.sharedsdk"
        )
        assert lib_one.start_line != lib_two.start_line
        assert shard_key(lib_one) == shard_key(lib_two)

    def test_different_library_shape_changes_the_shard_key(self):
        # The shard key addresses exactly what the shard stores: the
        # group's searchable tokens and line span.  A library variant
        # with different members (here: one more method per class, so
        # different signatures and line counts) must hash differently.
        lib_b = LibrarySpec(package="org.sharedsdk", seed=7, classes=10,
                            methods_per_class=6)
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        two = generate_app(_app("com.alpha", 1, (lib_b,))).apk.disassembly
        keys = [
            shard_key(
                next(g for g in partition_disassembly(d)
                     if g.label == "org.sharedsdk")
            )
            for d in (one, two)
        ]
        assert keys[0] != keys[1]


class TestCrossAppDedup:
    def test_shared_library_persists_once(self, store):
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        two = generate_app(_app("com.beta", 2)).apk.disassembly
        store.save_index(one, TokenIndex.for_disassembly(one))
        shards_after_first = store.describe().shards
        store.save_index(two, TokenIndex.for_disassembly(two))
        inventory = store.describe()

        # Only the second app's own group was new.
        assert inventory.shards == shards_after_first + 1
        assert store.stats.shards_shared >= 1
        assert inventory.shard_refs == inventory.shards + 1
        assert inventory.bytes_saved > 0
        assert inventory.dedup_ratio > 1.0

    def test_identical_rebuild_shares_every_shard(self, store):
        # "Two apps sharing every shard": a byte-identical rebuild of
        # the same app publishes nothing new — every group is shared.
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        store.save_index(one, TokenIndex.for_disassembly(one))
        writes_before = store.stats.writes
        shared_before = store.stats.shards_shared
        rebuilt = generate_app(_app("com.alpha", 1)).apk.disassembly
        store.save_tokens(rebuilt)
        assert store.stats.shards_shared - shared_before == \
            len(store._groups(rebuilt))
        # Only the manifest was rewritten.
        assert store.stats.writes == writes_before + 1

    def test_second_app_warm_starts_off_the_first_apps_library(self, store):
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        store.save_index(one, TokenIndex.for_disassembly(one))

        # The second app was never saved, yet its library group is
        # already on disk: the restore composes it and patches only the
        # app's own groups.
        two = generate_app(_app("com.beta", 2)).apk.disassembly
        restored = store.load_index(two)
        fresh = TokenIndex(two)
        assert restored is not None
        assert 0 < restored.patched_groups < len(store._groups(two))
        assert store.stats.partial_hits == 1
        assert restored.vocab == fresh.vocab
        assert restored.postings == fresh.postings
        assert restored.containing == fresh.containing


class TestRefcountedGc:
    def _age(self, *paths, seconds=7200.0):
        stamp = time.time() - seconds
        for path in paths:
            os.utime(path, (stamp, stamp))

    def test_live_reference_protects_a_shared_shard(self, store):
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        two = generate_app(_app("com.beta", 2)).apk.disassembly
        store.save_index(one, TokenIndex.for_disassembly(one))
        store.save_index(two, TokenIndex.for_disassembly(two))

        # Age the first app's entry and every shard; the second app's
        # manifest stays fresh and must keep the shared library shard
        # alive regardless of its age.
        self._age(*store.entry_dir(store_key(one)).iterdir())
        self._age(*store._shard_files())
        result = store.gc(max_age_seconds=3600.0)

        assert result.entries_removed == 1
        assert result.shards_removed >= 1  # the first app's own groups
        survivors = {p.stem for p in store._shard_files()}
        assert survivors == {sha for _, sha in store._groups(two)}
        # The surviving entry still restores whole.
        restored = store.load_index(two)
        assert restored is not None and restored.patched_groups == 0

    def test_unreferenced_shards_swept_once_last_manifest_dies(self, store):
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        store.save_index(one, TokenIndex.for_disassembly(one))
        self._age(*store.entry_dir(store_key(one)).iterdir())
        self._age(*store._shard_files())
        result = store.gc(max_age_seconds=3600.0)
        assert result.entries_removed == 1
        assert result.shards_removed == len(store._groups(one))
        assert store.describe().shards == 0

    def test_sharing_a_shard_refreshes_its_age(self, store):
        # A writer that *shares* an old shard (publishes only a manifest
        # reference) must re-arm gc's age gate on it, so the shard stays
        # protected even in the window before the manifest lands.
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        store.save_index(one, TokenIndex.for_disassembly(one))
        lib_sha = next(
            sha for group, sha in store._groups(one)
            if group.label == "org.sharedsdk"
        )
        self._age(store._shard_path(lib_sha))
        old_mtime = store._shard_path(lib_sha).stat().st_mtime

        two = generate_app(_app("com.beta", 2)).apk.disassembly
        store.save_index(two, TokenIndex.for_disassembly(two))
        assert store._shard_path(lib_sha).stat().st_mtime > old_mtime

    def test_fresh_unreferenced_shard_survives_an_aged_sweep(self, store):
        # A concurrent writer publishes shards before its manifest; an
        # aged gc must not reclaim them mid-publish.
        one = generate_app(_app("com.alpha", 1)).apk.disassembly
        for group, sha in store._groups(one):
            store._write_json(
                store._shard_path(sha),
                shard_payload(group, sha, FORMAT_VERSION),
            )
        result = store.gc(max_age_seconds=3600.0)
        assert result.shards_removed == 0
        assert store.describe().shards == len(store._groups(one))


class TestComposeParity:
    def _parity(self, restored, fresh):
        assert restored.vocab == fresh.vocab
        assert restored.postings == fresh.postings
        assert restored.exact == fresh.exact
        assert restored.containing == fresh.containing
        assert restored._string_ids == fresh._string_ids
        assert restored.posting_entries == fresh.posting_entries

    def test_composed_index_matches_fresh_build(self, store):
        for build in (build_heyzap, build_lg_tv_plus):
            disassembly = build().disassembly
            store.save_index(disassembly, TokenIndex.for_disassembly(disassembly))
            restored = store.load_index(build().disassembly)
            assert restored is not None and restored.restored
            assert restored.build_seconds == 0.0
            self._parity(restored, TokenIndex.for_disassembly(disassembly))

    def test_composed_tokens_match_fresh_render(self, store):
        disassembly = generate_app(_app("com.alpha", 1)).apk.disassembly
        store.save_tokens(disassembly)
        rebuilt = generate_app(_app("com.alpha", 1)).apk.disassembly
        assert store.load_tokens(rebuilt) == disassembly.tokens

    def test_patched_composition_is_still_byte_identical(self, store):
        disassembly = generate_app(_app("com.alpha", 1)).apk.disassembly
        store.save_index(disassembly, TokenIndex.for_disassembly(disassembly))
        victim = store._groups(disassembly)[-1][1]
        store._shard_path(victim).unlink()

        rebuilt = generate_app(_app("com.alpha", 1)).apk.disassembly
        restored = store.load_index(rebuilt)
        assert restored is not None and restored.patched_groups == 1
        self._parity(restored, TokenIndex(disassembly))

    def test_compose_from_raw_payloads_matches_token_fold(self):
        # The composition primitive itself, without any store I/O.
        disassembly = build_lg_tv_plus().disassembly
        parts = []
        for group in partition_disassembly(disassembly):
            sha = shard_key(group)
            parts.append(
                (group.start_line, shard_payload(group, sha, FORMAT_VERSION))
            )
        composed = compose_index(parts)
        self._parity(composed, TokenIndex(disassembly))

    def test_fold_group_matches_token_index_fold(self):
        disassembly = build_heyzap().disassembly
        triples = [(t.line_no, t.kind, t.text) for t in disassembly.tokens]
        vocab, postings, string_ids, containing = fold_group(triples)
        fresh = TokenIndex(disassembly)
        assert vocab == fresh.vocab
        assert postings == fresh.postings
        assert string_ids == fresh._string_ids
        assert containing == fresh.containing


class TestPipelineIntegration:
    def _config(self, tmp_path, **kwargs):
        return BackDroidConfig(
            search_backend="indexed",
            store_dir=str(tmp_path / "store"),
            **kwargs,
        )

    def test_analyze_spec_reports_patched_shards(self, tmp_path):
        config = self._config(tmp_path)
        first = analyze_spec(_app("com.alpha", 1), config)
        assert first.ok and first.shards_patched == 0

        # A different app sharing the library: its first-ever analysis
        # is already warm-partial thanks to cross-app dedup.
        second = analyze_spec(_app("com.beta", 2), config)
        assert second.ok
        assert second.index_restored
        assert second.shards_patched >= 1

    def test_batch_aggregates_partial_restores(self, tmp_path):
        config = self._config(tmp_path)
        specs = [_app("com.alpha", 1), _app("com.beta", 2),
                 _app("com.gamma", 3)]
        result = run_batch(specs, config, executor="serial",
                           session_cache_size=0)
        assert not result.failures
        # Apps after the first ride the shared library shard.
        assert result.partial_restores >= 2
        assert result.shards_patched >= 2
        assert "partial" in result.render()
        payload = result.as_dict()
        assert payload["aggregate"]["store"]["partial_restores"] >= 2

    def test_probe_classifies_sibling_app_partial_after_specmap(self, tmp_path):
        from repro.core.batch import probe_spec

        config = self._config(tmp_path)
        store = config.artifact_store()
        spec = _app("com.beta", 2)
        assert analyze_spec(_app("com.alpha", 1), config).ok
        assert analyze_spec(spec, config).ok

        # Drop the beta app's own shard: the next probe sees a partial
        # entry and still schedules it warm.
        disassembly = generate_app(spec).apk.disassembly
        own = next(
            sha for group, sha in store._groups(disassembly)
            if group.label != "org.sharedsdk"
        )
        store._shard_path(own).unlink()
        key, level = probe_spec(spec, store, None)
        assert key == store_key(disassembly)
        assert level == "partial"
        from repro.core.batch import level_is_warm

        assert level_is_warm(level, config)
