"""The recursive static-initializer search (Sec. IV-C).

``<clinit>`` methods are never explicitly invoked by app bytecode — the
VM runs them when the class is loaded — so searching their signature
"would hit nothing".  The paper's mechanism: determine only the
*control-flow reachability* of the initializer (``<clinit>`` takes no
parameters, so there is no dataflow to track either way):

1. search the bytecode for the set of classes C = {c1..cn} that *use*
   the initializer's class;
2. if any ci is an entry component registered in the manifest, the
   initializer is reachable;
3. otherwise recurse on each ci, until no new class is found.

The Heyzap example of the paper: ``APIClient`` is used by ``AdModel``,
which is used by the entry class ``HeyzapInterstitialActivity`` —
reachable after two recursive steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.android.manifest import Manifest
from repro.dex.hierarchy import ClassPool
from repro.search.index import BytecodeSearcher


@dataclass
class ClinitSearchResult:
    """The verdict for one static initializer."""

    class_name: str
    reachable: bool
    #: A witness chain of classes from the initializer's class to the
    #: entry class (when reachable), e.g.
    #: ``("com.heyzap.internal.APIClient", "com.heyzap.house.model.AdModel",
    #:    "com.heyzap.sdk.ads.HeyzapInterstitialActivity")``.
    chain: tuple[str, ...] = ()
    #: Every class visited by the recursive search.
    visited: tuple[str, ...] = ()


def _is_entry_class(
    pool: ClassPool, manifest: Manifest, class_name: str
) -> bool:
    """Registered directly, or a superclass of it is registered.

    Registration is checked on the class and its superclass chain, since
    a manifest may register a base component while the initializer's
    user is a subclass of it.
    """
    if manifest.is_registered(class_name):
        return True
    return any(
        manifest.is_registered(super_name)
        for super_name in pool.superclass_chain(class_name)
    )


def clinit_reachability_search(
    searcher: BytecodeSearcher,
    pool: ClassPool,
    manifest: Manifest,
    class_name: str,
    max_classes: int = 4096,
) -> ClinitSearchResult:
    """Run the recursive class-use search for ``<clinit>`` of *class_name*.

    Breadth-first so the witness chain is a shortest use-chain.  The
    search is purely textual: each step asks the bytecode plaintext which
    classes mention the current class (``new-instance``, ``const-class``,
    field access or invocation all surface its descriptor).
    """
    parents: dict[str, Optional[str]] = {class_name: None}
    frontier = [class_name]
    visited_order: list[str] = []

    while frontier and len(parents) <= max_classes:
        current = frontier.pop(0)
        visited_order.append(current)
        if _is_entry_class(pool, manifest, current):
            chain: list[str] = []
            node: Optional[str] = current
            while node is not None:
                chain.append(node)
                node = parents[node]
            return ClinitSearchResult(
                class_name=class_name,
                reachable=True,
                chain=tuple(reversed(chain)),
                visited=tuple(visited_order),
            )
        users = searcher.classes_mentioning(current)
        users |= searcher.subclass_header_mentions(current)
        for user in sorted(users):
            if user not in parents:
                parents[user] = current
                frontier.append(user)

    return ClinitSearchResult(
        class_name=class_name,
        reachable=False,
        visited=tuple(visited_order),
    )
