"""The shared nearest-rank quantile helper and its edge-case contract."""

import pytest

from repro.telemetry import quantile
from repro.telemetry.quantiles import summarize


class TestQuantile:
    def test_empty_window_reports_null_not_zero(self):
        # The satellite contract: an empty percentile window is an
        # absence of data, never a fake 0.
        assert quantile([], 0.5) is None

    def test_single_sample_reports_null(self):
        # One observation cannot anchor a distribution either.
        assert quantile([42.0], 0.99) is None

    def test_two_samples_is_the_smallest_reportable_window(self):
        assert quantile([1.0, 3.0], 0.5) == 1.0
        assert quantile([1.0, 3.0], 1.0) == 3.0

    def test_nearest_rank_on_a_known_distribution(self):
        samples = list(range(1, 101))  # 1..100
        assert quantile(samples, 0.50) == 50.0
        assert quantile(samples, 0.90) == 90.0
        assert quantile(samples, 0.99) == 99.0
        assert quantile(samples, 1.00) == 100.0

    def test_unsorted_input_is_sorted_internally(self):
        assert quantile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_zero_fraction_is_the_minimum(self):
        assert quantile([7.0, 2.0, 9.0], 0.0) == 2.0

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError):
            quantile([1.0, 2.0], 1.5)
        with pytest.raises(ValueError):
            quantile([1.0, 2.0], -0.1)

    def test_result_is_a_float(self):
        value = quantile([1, 2, 3], 0.5)
        assert isinstance(value, float)


class TestSummarize:
    def test_default_fractions(self):
        summary = summarize([float(i) for i in range(1, 101)])
        assert summary == {"p50": 50.0, "p90": 90.0, "p99": 99.0}

    def test_empty_summary_is_all_null(self):
        assert summarize([]) == {"p50": None, "p90": None, "p99": None}
