"""The raw text-search engine over the dexdump plaintext.

This is the "bytecode search space" half of Fig. 3: given a search
signature (already translated to dexdump format), find every line of the
disassembled plaintext that mentions it, and map each hit back to the
containing method so the program-analysis space can take over.

The line-level scanning itself is delegated to a pluggable
:class:`~repro.search.backends.SearchBackend` — the original O(text)
:class:`~repro.search.backends.LinearScanBackend` by default, or the
prebuilt :class:`~repro.search.backends.InvertedIndexBackend` whose
posting lists turn signature/descriptor/literal queries into dict
lookups.  All backends return identical hits; only the cost differs.

All searches run through a :class:`~repro.search.caching.SearchCommandCache`
— repeated commands (common when similar paths are explored across
different sinks) are served from cache, reproducing the Sec. IV-F
"search caching" enhancement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.dex.disassembler import Disassembly
from repro.dex.types import FieldSignature, MethodSignature, java_to_dex_type
from repro.search.backends import BackendSpec, JoinedText, create_backend
from repro.search.caching import SearchCommandCache


@dataclass(frozen=True)
class SearchHit:
    """One text hit: absolute line plus its program-space location."""

    line_no: int
    line: str
    #: The method whose disassembly block contains the hit (None when the
    #: hit is outside any method body, e.g. in a class header).
    method: Optional[MethodSignature]
    #: The IR statement index the hit line renders, if known.
    stmt_index: Optional[int]


class BytecodeSearcher:
    """Searches one app's disassembled plaintext, with command caching."""

    def __init__(
        self,
        disassembly: Disassembly,
        cache: Optional[SearchCommandCache] = None,
        backend: BackendSpec = None,
    ):
        self.disassembly = disassembly
        self.cache = cache if cache is not None else SearchCommandCache()
        self.backend = create_backend(backend, disassembly)

    # ------------------------------------------------------------------
    # Core primitives
    # ------------------------------------------------------------------
    @property
    def _text(self) -> str:
        """The joined plaintext (kept for introspection and tests)."""
        return JoinedText.for_disassembly(self.disassembly).text

    def _line_of_offset(self, offset: int) -> int:
        return JoinedText.for_disassembly(self.disassembly).line_of_offset(offset)

    def _hit(self, line_no: int) -> SearchHit:
        block = self.disassembly.block_at_line(line_no)
        stmt_index = block.stmt_index_for_line(line_no) if block else None
        return SearchHit(
            line_no=line_no,
            line=self.disassembly.lines[line_no],
            method=block.signature if block else None,
            stmt_index=stmt_index,
        )

    def search_literal(self, needle: str, kind: str = "raw") -> list[SearchHit]:
        """All hits of a literal substring (cached by command)."""
        return self.cache.get_or_run(
            kind, needle,
            lambda: [self._hit(n) for n in self.backend.literal_lines(needle)],
        )

    def search_pattern(self, pattern: str, kind: str = "raw-regex") -> list[SearchHit]:
        """All hits of a regular expression (cached by command)."""
        return self.cache.get_or_run(
            kind, pattern,
            lambda: [self._hit(n) for n in self.backend.pattern_lines(pattern)],
        )

    def _search_token(self, needle: str, kind: str) -> list[SearchHit]:
        """All hits of a token-shaped needle (cached by command).

        Uses the same ``(kind, command)`` cache keys as a literal search
        would, so cache rates are backend-independent.
        """
        return self.cache.get_or_run(
            kind, needle,
            lambda: [self._hit(n) for n in self.backend.token_lines(needle)],
        )

    # ------------------------------------------------------------------
    # Signature-level searches
    # ------------------------------------------------------------------
    def find_invocations(self, callee: MethodSignature) -> list[SearchHit]:
        """Invocation sites of a method signature (Fig. 3, step 1).

        The needle is the full dexdump signature; only ``invoke-*`` lines
        qualify (the same signature also appears in its own method
        header, which must not count as a call site).
        """
        needle = callee.to_dex()
        hits = self._search_token(needle, kind="caller-method")
        return [h for h in hits if "invoke-" in h.line]

    def find_field_accesses(
        self, fieldsig: FieldSignature, writes_only: bool = False
    ) -> list[SearchHit]:
        """Field access sites (the slicer's static-field search, Sec. V-A)."""
        needle = fieldsig.to_dex()
        hits = self._search_token(needle, kind="field")
        accesses = [
            h
            for h in hits
            if any(op in h.line for op in ("iget", "iput", "sget", "sput"))
        ]
        if writes_only:
            accesses = [h for h in accesses if "iput" in h.line or "sput" in h.line]
        return accesses

    def find_const_class(self, class_name: str) -> list[SearchHit]:
        """``const-class`` mentions of a class (explicit-ICC parameters)."""
        marker = "const-class"
        descriptor = java_to_dex_type(class_name)
        hits = self._search_token(descriptor, kind="invoked-class")
        return [h for h in hits if marker in h.line]

    def find_const_string(self, value: str) -> list[SearchHit]:
        """``const-string`` mentions of a literal (implicit-ICC actions).

        The value is matched literally — never compiled into a regex —
        so regex metacharacters (``.*+?()[]`` and friends, common in
        intent actions) need no escaping and cannot mis-match.
        """
        marker = "const-string"
        hits = self._search_token(f'"{value}"', kind="raw")
        return [h for h in hits if marker in h.line]

    def find_invocations_by_name(
        self, method_name: str, param_blob: Optional[str] = None
    ) -> list[SearchHit]:
        """Invocations matched by method name regardless of receiver class.

        Used by the two-time ICC search, where the receiver of e.g.
        ``startService`` can be any ``Context`` subclass.  ``param_blob``
        optionally pins the dex parameter descriptor blob.  Both inputs
        are regex-escaped before entering the pattern.
        """
        params = re.escape(param_blob) if param_blob is not None else "[^)]*"
        pattern = rf"invoke-[a-z]+ \{{[^}}]*\}}, L[^;]+;\.{re.escape(method_name)}:\({params}\)"
        return self.search_pattern(pattern, kind="caller-method")

    def classes_mentioning(self, class_name: str) -> set[str]:
        """Names of classes whose bytecode text mentions *class_name*.

        One recursive step of the static-initializer search (Sec. IV-C):
        "BackDroid first launches a search to find out a set of classes
        that invoke the SI class."
        """
        descriptor = java_to_dex_type(class_name)
        hits = self._search_token(descriptor, kind="invoked-class")
        users: set[str] = set()
        for hit in hits:
            if hit.method is None:
                continue
            if hit.method.class_name == class_name:
                continue
            # Class-header lines (superclass/interface declarations) have
            # no method; instruction-level mentions land here.
            users.add(hit.method.class_name)
        return users

    def subclass_header_mentions(self, class_name: str) -> set[str]:
        """Classes whose *header* (superclass/interfaces) names the class."""
        descriptor = f"'{java_to_dex_type(class_name)}'"
        hits = self._search_token(descriptor, kind="invoked-class")
        users: set[str] = set()
        current_class: Optional[str] = None
        for hit in hits:
            if "Superclass" in hit.line or ": '" in hit.line:
                # Walk back to the nearest class-descriptor line.
                for line_no in range(hit.line_no, -1, -1):
                    line = self.disassembly.lines[line_no]
                    if "Class descriptor" in line:
                        match = re.search(r"'L([^;]+);'", line)
                        if match:
                            current_class = match.group(1).replace("/", ".")
                        break
                if current_class and current_class != class_name:
                    users.add(current_class)
        return users
