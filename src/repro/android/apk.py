"""The ``Apk`` bundle: app classes + manifest + metadata.

Mirrors BackDroid's preprocessing (Sec. III, step 1): extract bytecode and
manifest, keep an IR view for the program-analysis space, and keep a
dexdump plaintext view for the bytecode-search space.  Both views are
computed lazily and cached per app.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.android.framework import framework_pool
from repro.android.manifest import Manifest
from repro.dex.disassembler import Disassembly, disassemble
from repro.dex.hierarchy import ClassPool, DexClass


@dataclass
class Apk:
    """One analyzable app."""

    #: Google-Play-style package name, e.g. ``com.lge.app1``.
    package: str
    #: Application classes (the app's own DEX code, libraries included).
    classes: ClassPool = field(default_factory=ClassPool)
    #: The parsed manifest.
    manifest: Manifest = None  # type: ignore[assignment]
    #: Download-size metadata (used by the corpus experiments, Table I).
    size_mb: float = 0.0
    #: DEX file year (Table I groups apps by year).
    year: int = 2018
    #: Install-count metadata (dataset selection requires >= 1e6).
    installs: int = 1_000_000

    def __post_init__(self) -> None:
        if self.manifest is None:
            self.manifest = Manifest(package=self.package)
        self._full_pool: Optional[ClassPool] = None
        self._disassembly: Optional[Disassembly] = None

    # ------------------------------------------------------------------
    @property
    def full_pool(self) -> ClassPool:
        """App classes + the shared framework model, for hierarchy queries."""
        if self._full_pool is None:
            merged = ClassPool()
            for cls in self.classes:
                merged.add(cls)
            for cls in framework_pool():
                if cls.name not in merged:
                    merged.add(cls)
            self._full_pool = merged
        return self._full_pool

    @property
    def disassembly(self) -> Disassembly:
        """The dexdump-style plaintext of the app's own classes (cached)."""
        if self._disassembly is None:
            self._disassembly = disassemble(self.classes)
        return self._disassembly

    def invalidate_caches(self) -> None:
        """Drop the cached views after mutating ``classes``."""
        self._full_pool = None
        self._disassembly = None

    # ------------------------------------------------------------------
    def app_class(self, name: str) -> Optional[DexClass]:
        return self.classes.get(name)

    def method_count(self) -> int:
        return self.classes.method_count()

    def class_count(self) -> int:
        return sum(1 for _ in self.classes.application_classes())

    def code_units(self) -> int:
        """Total IR statements — our proxy for DEX code size."""
        return sum(
            len(m.body) for c in self.classes.application_classes() for m in c.methods
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Apk({self.package!r}, classes={self.class_count()}, "
            f"methods={self.method_count()}, size={self.size_mb:.1f}MB)"
        )
