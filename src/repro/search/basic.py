"""The basic signature-based search (Sec. IV-A).

Handles *signature methods* — static methods, private methods and
constructors — whose invocations always carry the callee's own (or a
child class's) signature in the bytecode text.  The five steps of Fig. 3:

1. translate the callee signature from Soot format to dexdump format;
2. search the entire bytecode plaintext for invocations;
3. identify the containing (caller) method of each hit and translate its
   signature back to Soot format;
4. locate the actual call site inside the caller's body with a quick
   forward scan in the program-analysis space;
5. hand the caller/callee edge to the SSG.

Child classes (Sec. IV-A, "Searching over a child class"): when a
subclass does *not* override the callee method, an invocation may be
written against the child's signature, so one more search signature is
added per non-overriding child.  Overriding children are excluded — their
signature would match the *overriding* method's callers instead.
"""

from __future__ import annotations

from repro.dex.hierarchy import ClassPool
from repro.dex.types import MethodSignature
from repro.search.common import CallSite
from repro.search.index import BytecodeSearcher


def build_search_signatures(
    pool: ClassPool, callee: MethodSignature
) -> list[MethodSignature]:
    """The callee's signature plus one per non-overriding child class."""
    signatures = [callee]
    sub_signature = callee.sub_signature()
    for child in pool.all_subclasses(callee.class_name):
        if child.is_framework:
            continue
        if not child.declares_sub_signature(sub_signature):
            signatures.append(callee.with_class(child.name))
    return signatures


def locate_call_sites(
    pool: ClassPool,
    caller: MethodSignature,
    searched: MethodSignature,
) -> list[int]:
    """Step 4: forward-scan the caller body for the searched invocation."""
    method = pool.resolve_method(caller)
    if method is None:
        return []
    sites = []
    for index, stmt in enumerate(method.body):
        expr = stmt.invoke_expr()
        if expr is None:
            continue
        if expr.method == searched:
            sites.append(index)
    return sites


def basic_search(
    searcher: BytecodeSearcher,
    pool: ClassPool,
    callee: MethodSignature,
) -> list[CallSite]:
    """Run the full basic search, returning every located call site."""
    call_sites: list[CallSite] = []
    seen: set[tuple[MethodSignature, int]] = set()
    for search_sig in build_search_signatures(pool, callee):
        for hit in searcher.find_invocations(search_sig):
            if hit.method is None:
                continue
            if hit.method == callee:
                continue  # recursion: the callee invoking itself
            for site_index in locate_call_sites(pool, hit.method, search_sig):
                key = (hit.method, site_index)
                if key in seen:
                    continue
                seen.add(key)
                call_sites.append(
                    CallSite(
                        caller=hit.method,
                        stmt_index=site_index,
                        matched_signature=search_sig,
                    )
                )
    return call_sites
