"""The BackDroid driver: the four-step pipeline of Fig. 2.

1. *Preprocessing*: the :class:`~repro.android.apk.Apk` already carries
   the IR view and the dexdump plaintext (merged multidex).
2. *Initial sink search*: locate target sink API calls by text search of
   the bytecode plaintext.
3. *Backward slicing*: generate one SSG per sink call, driving the
   on-the-fly search whenever a caller must be located.
4. *Forward analysis*: propagate constants and points-to facts over each
   SSG and hand the resolved sink parameters to the detectors.

Sink-API-call caching (Sec. IV-F) short-circuits sinks hosted by a method
already proven unreachable.

The pipeline itself lives in :mod:`repro.api.session` — ``BackDroid``
is retained as a thin compatibility shim that runs a one-shot
:class:`~repro.api.session.AnalysisSession` (the parity tests hold the
shim to identical reports).  New code should use the session API
directly: it serves many requests over one app without rebuilding
per-app state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.android.apk import Apk
from repro.android.framework import SinkSpec, sinks_for_rules
from repro.core.report import AnalysisReport
from repro.core.slicer import SinkCallSite
from repro.dex.types import MethodSignature
from repro.search.basic import locate_call_sites
from repro.search.engine import CallerResolutionEngine
from repro.store import ArtifactStore

#: Selectable warm-start reuse levels (``BackDroidConfig.store_mode``).
STORE_MODES = ("index", "full")


@dataclass
class BackDroidConfig:
    """Tuning knobs.  BackDroid needs no precision/performance trade-off
    parameters (Sec. VI-A); these switches exist to reproduce specific
    paper behaviours and for the ablation benchmarks."""

    #: Which sink rule families to analyze.
    sink_rules: tuple[str, ...] = ("crypto-ecb", "ssl-verifier")
    #: Explicit sink list overriding ``sink_rules`` when set.
    sinks: Optional[tuple[SinkSpec, ...]] = None
    #: The Sec. VI-C false-negative fix: also search sink signatures
    #: re-homed onto app classes extending the sink's declaring class
    #: (off by default, reproducing the paper's two FNs).
    check_class_hierarchy_in_initial_search: bool = False
    #: Sec. IV-F enhancements (ablation switches).
    enable_search_cache: bool = True
    enable_sink_cache: bool = True
    #: Which search backend scans the plaintext: ``"linear"`` (the
    #: paper's O(text) scan) or ``"indexed"`` (prebuilt inverted index).
    search_backend: str = "linear"
    #: LRU bound for the search command cache (None = unbounded, the
    #: paper's behaviour; batch runs may bound it to cap memory).
    search_cache_max_entries: Optional[int] = None
    #: Backward-walk work bound per sink.
    max_frames: int = 4000
    #: Attach full SSG dumps to the report notes.
    collect_ssg_dumps: bool = False
    #: Root of the persistent warm-start artifact store (None = off).
    #: A plain path string so configs stay picklable across pool workers.
    store_dir: Optional[str] = None
    #: What a warm store entry may replace: ``"index"`` restores the
    #: inverted index only; ``"full"`` additionally serves finished
    #: per-app outcomes in batch runs, skipping re-analysis entirely.
    store_mode: str = "index"

    def sink_specs(self) -> tuple[SinkSpec, ...]:
        if self.sinks is not None:
            return self.sinks
        return sinks_for_rules(self.sink_rules)

    # ------------------------------------------------------------------
    def artifact_store(self) -> Optional[ArtifactStore]:
        """A fresh store handle for this config, or None when disabled."""
        if self.store_dir is None:
            return None
        if self.store_mode not in STORE_MODES:
            raise ValueError(
                f"unknown store mode {self.store_mode!r}: "
                f"choose from {STORE_MODES}"
            )
        return ArtifactStore(self.store_dir)

    def store_fingerprint(self) -> str:
        """A stable digest of every analysis-affecting knob.

        Stored outcomes are only reusable under the exact configuration
        that produced them; anything altering findings, per-sink
        verdicts or the reported backend/cache statistics must feed
        this hash.
        """
        parts = (
            repr(tuple(sorted(self.sink_rules))),
            repr(
                tuple(
                    (s.rule, s.key, s.tracked_params) for s in self.sinks
                )
                if self.sinks is not None
                else None
            ),
            repr(self.check_class_hierarchy_in_initial_search),
            repr(self.max_frames),
            repr(self.search_backend),
            repr(self.enable_search_cache),
            repr(self.enable_sink_cache),
            repr(self.search_cache_max_entries),
        )
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def find_sink_call_sites(
    apk: Apk,
    engine: CallerResolutionEngine,
    specs: Iterable[SinkSpec],
    check_class_hierarchy: bool = False,
) -> list[SinkCallSite]:
    """Step 2 of Fig. 2: the initial sink search over the plaintext.

    Spec order matters for duplicate attribution: when two specs locate
    the same (method, statement) site, the first spec claims it.
    """
    pool = apk.full_pool
    sites: list[SinkCallSite] = []
    seen: set[tuple[MethodSignature, int]] = set()
    for spec in specs:
        signatures = [spec.signature]
        if check_class_hierarchy:
            # The fix for the paper's two FNs: app classes extending
            # the sink's declaring class may expose the sink API
            # under their own signature.
            for cls in pool.application_classes():
                if spec.signature.class_name in pool.superclass_chain(cls.name):
                    if not cls.declares_sub_signature(spec.signature.sub_signature()):
                        signatures.append(spec.signature.with_class(cls.name))
        for signature in signatures:
            for hit in engine.searcher.find_invocations(signature):
                if hit.method is None:
                    continue
                for index in locate_call_sites(pool, hit.method, signature):
                    key = (hit.method, index)
                    if key in seen:
                        continue
                    seen.add(key)
                    sites.append(
                        SinkCallSite(method=hit.method, stmt_index=index, spec=spec)
                    )
    sites.sort(key=lambda s: (str(s.method), s.stmt_index))
    return sites


class BackDroid:
    """Targeted, search-driven security vetting of one app at a time.

    A compatibility shim: each ``analyze`` call builds a one-shot
    :class:`~repro.api.session.AnalysisSession` from the config and runs
    a single request.  Clients analyzing one app repeatedly (or with
    varying targets) should hold a session instead, which reuses the
    backend index and search cache across requests.
    """

    def __init__(self, config: Optional[BackDroidConfig] = None) -> None:
        self.config = config if config is not None else BackDroidConfig()

    # ------------------------------------------------------------------
    def analyze(self, apk: Apk) -> AnalysisReport:
        """Run the full Fig. 2 pipeline on one app."""
        # Imported here: repro.api is layered above repro.core.
        from repro.api.request import AnalysisRequest
        from repro.api.session import AnalysisSession

        session = AnalysisSession.from_config(apk, self.config)
        envelope = session.run(AnalysisRequest.from_config(self.config))
        return envelope.report

    # ------------------------------------------------------------------
    def find_sink_call_sites(
        self, apk: Apk, engine: Optional[CallerResolutionEngine] = None
    ) -> list[SinkCallSite]:
        """Step 2 of Fig. 2 under this driver's config (compat wrapper)."""
        if engine is None:
            engine = CallerResolutionEngine(
                apk, backend=self.config.search_backend
            )
        return find_sink_call_sites(
            apk,
            engine,
            self.config.sink_specs(),
            check_class_hierarchy=(
                self.config.check_class_hierarchy_in_initial_search
            ),
        )
