"""Tracer semantics: ambient propagation, cross-process contexts,
disabled-mode no-ops, and the rendered tree."""

import os

from repro import telemetry
from repro.telemetry import NULL_SPAN, Tracer, render_span_tree
from repro.telemetry.tracing import current_span


class TestDisabled:
    def test_disabled_tracer_hands_out_the_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("job")
        assert span is NULL_SPAN
        assert not span  # falsy: `if span:` guards record-keeping
        assert span.context() is None
        span.set_attr("k", "v")  # every call site must be a no-op
        span.end()

    def test_module_helper_without_ambient_span_is_a_noop(self):
        # Library instrumentation outside any traced scope: the default
        # tracer is disabled, so this must cost nothing and record
        # nothing.
        with telemetry.span("index.fold") as span:
            assert span is NULL_SPAN
        assert current_span() is None


class TestAmbientPropagation:
    def test_children_nest_under_the_ambient_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("job") as root:
            # Library code uses the module helper with zero plumbing;
            # the ambient parent carries the tracer itself.
            with telemetry.span("index.fold") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                assert current_span() is child
            assert current_span() is root
        spans = tracer.collect(root.trace_id)
        assert [s["name"] for s in spans] == ["index.fold", "job"] or [
            s["name"] for s in spans
        ] == ["job", "index.fold"]

    def test_non_ambient_start_span_never_becomes_the_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("job") as root:
            held = telemetry.start_span("resolve.callers")
            # Work between generator yields must still parent on the
            # job, not on the held-open span.
            with telemetry.span("unrelated") as other:
                assert other.parent_id == root.span_id
            held.end()
        spans = tracer.collect(root.trace_id)
        by_name = {s["name"]: s for s in spans}
        assert by_name["resolve.callers"]["parent_id"] == root.span_id

    def test_exception_stamps_an_error_attr(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("job") as root:
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (span,) = tracer.collect(root.trace_id)
        assert span["attrs"]["error"] == "RuntimeError: boom"


class TestCrossProcessContext:
    def test_dict_context_parents_a_foreign_tracer(self):
        # The worker side: a local tracer opens its root span on the
        # serialized {trace_id, span_id} that rode the pipe.
        parent_side = Tracer(enabled=True)
        dispatch = parent_side.start_span("dispatch")
        ctx = dispatch.context()

        worker_side = Tracer(enabled=True)
        with worker_side.span("worker", parent=ctx) as worker:
            assert worker.trace_id == dispatch.trace_id
            assert worker.parent_id == dispatch.span_id
        shipped = worker_side.collect(dispatch.trace_id)
        assert len(shipped) == 1

        # The parent merges the shipped spans into its own buffer.
        parent_side.attach(dispatch.trace_id, shipped)
        dispatch.end()
        spans = parent_side.collect(dispatch.trace_id)
        assert {s["name"] for s in spans} == {"dispatch", "worker"}
        assert len({s["trace_id"] for s in spans}) == 1

    def test_every_span_stamps_its_pid(self):
        tracer = Tracer(enabled=True)
        span = tracer.start_span("job")
        assert span.pid == os.getpid()
        span.end()
        (entry,) = tracer.collect(span.trace_id)
        assert entry["pid"] == os.getpid()


class TestBuffering:
    def test_collect_pops_the_trace(self):
        tracer = Tracer(enabled=True)
        span = tracer.start_span("job")
        span.end()
        assert len(tracer.collect(span.trace_id)) == 1
        assert tracer.collect(span.trace_id) == []

    def test_oldest_trace_evicted_beyond_the_bound(self):
        tracer = Tracer(enabled=True, max_traces=2)
        spans = []
        for _ in range(3):
            s = tracer.start_span("job")
            s.end()
            spans.append(s)
        assert tracer.collect(spans[0].trace_id) == []
        assert tracer.dropped_spans == 1
        assert len(tracer.collect(spans[2].trace_id)) == 1

    def test_attach_ignores_empty(self):
        tracer = Tracer(enabled=True)
        tracer.attach(None, [{"name": "x"}])
        tracer.attach("t", [])
        assert tracer.pending_traces() == 0


class TestRendering:
    def test_tree_indents_children_and_shows_pids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("job", attrs={"lane": "main"}) as root:
            with tracer.span("dispatch"):
                with tracer.span("worker"):
                    pass
        text = render_span_tree(tracer.collect(root.trace_id))
        lines = text.splitlines()
        assert lines[0].startswith("job ")
        assert lines[1].startswith("  dispatch ")
        assert lines[2].startswith("    worker ")
        assert "lane='main'" in lines[0]
        assert f"pid={os.getpid()}" in lines[0]

    def test_empty_trace_renders_a_placeholder(self):
        assert render_span_tree([]) == "(no spans recorded)"
