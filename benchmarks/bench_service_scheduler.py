"""Store-aware two-lane dispatch vs. FIFO single-lane dispatch.

The service's pitch: on a mixed corpus, submissions whose artifacts are
already in the store cost milliseconds, but FIFO dispatch still parks
them behind cold multi-second analyses.  This benchmark builds such a
mix — half the corpus pre-warmed into a ``"full"``-mode store, half
cold — and pushes the same interleaved submission stream through two
schedulers with the *same total worker count*:

* **fifo** — ``StoreAwareScheduler(workers=3, fast_lane_workers=0)``:
  probes still run (warm hits are visible) but everything shares one
  lane in submission order;
* **two-lane** — ``StoreAwareScheduler(workers=2, fast_lane_workers=1)``:
  warm submissions ride the dedicated fast lane.

Acceptance bars (asserted):

* warm jobs' mean queue wait under two-lane dispatch is lower than
  under FIFO dispatch;
* no warm submission ever rebuilds its inverted index
  (``index_build_seconds == 0`` on every warm result), including an
  ``"index"``-mode probe where the analysis itself re-runs.

Knobs: ``REPRO_BENCH_SERVICE_APPS`` caps the corpus (default
min(BENCH_APPS, 16)); ``REPRO_BENCH_SCALE`` scales app bulk as usual.
"""

from __future__ import annotations

import os
import shutil
import statistics
import tempfile
import time

from benchmarks.conftest import BENCH_APPS, BENCH_SCALE, emit_table, render_table
from repro.core import BackDroidConfig, analyze_spec
from repro.service import StoreAwareScheduler
from repro.workload.corpus import benchmark_app_spec

SERVICE_APPS = int(
    os.environ.get("REPRO_BENCH_SERVICE_APPS", str(min(BENCH_APPS, 16)))
)
#: Keep both schedulers at the same total worker count.
TOTAL_WORKERS = 3


def _config(store_dir: str, mode: str = "full") -> BackDroidConfig:
    return BackDroidConfig(
        search_backend="indexed", store_dir=store_dir, store_mode=mode
    )


def _submission_stream() -> list:
    """Cold/warm interleaved, cold first — worst case for FIFO warmth."""
    warm = [benchmark_app_spec(i, scale=BENCH_SCALE)
            for i in range(0, SERVICE_APPS, 2)]
    cold = [benchmark_app_spec(i, scale=BENCH_SCALE)
            for i in range(1, SERVICE_APPS, 2)]
    stream = []
    for pair in zip(cold, warm):
        stream.extend(pair)
    stream.extend(cold[len(warm):] or warm[len(cold):])
    return stream


def _drive(store_dir: str, fast_lane_workers: int) -> dict:
    scheduler = StoreAwareScheduler(
        _config(store_dir),
        workers=TOTAL_WORKERS - fast_lane_workers,
        fast_lane_workers=fast_lane_workers,
    )
    started = time.perf_counter()
    jobs = [scheduler.submit(spec) for spec in _submission_stream()]
    scheduler.shutdown(wait=True)
    wall = time.perf_counter() - started

    finished = [scheduler.queue.get(job.id) for job in jobs]
    assert all(job.state == "done" for job in finished), [
        (job.id, job.error) for job in finished if job.state != "done"
    ]
    warm_jobs = [job for job in finished if job.warm]
    cold_jobs = [job for job in finished if not job.warm]

    def mean_wait(jobs):
        # A degenerate corpus knob (REPRO_BENCH_SERVICE_APPS=1) can
        # leave one half empty; report 0 rather than crash.
        return statistics.fmean(j.wait_seconds for j in jobs) if jobs else 0.0

    return {
        "wall": wall,
        "warm_jobs": warm_jobs,
        "warm_wait": mean_wait(warm_jobs),
        "cold_wait": mean_wait(cold_jobs),
        "stats": scheduler.stats(),
    }


def run_dispatch_comparison(root_dir: str):
    # Pre-warm the even half of the corpus (outcomes + indexes + specmap),
    # then give each dispatcher its own copy of that store — a full-mode
    # drive persists the cold outcomes it computes, so sharing one store
    # would hand the second dispatcher an all-warm corpus.
    seed_dir = os.path.join(root_dir, "seed")
    warm_config = _config(seed_dir)
    for i in range(0, SERVICE_APPS, 2):
        outcome = analyze_spec(benchmark_app_spec(i, scale=BENCH_SCALE),
                               warm_config)
        assert outcome.ok, outcome.error
    runs = {}
    for name, fast_lane_workers in (("fifo", 0), ("two-lane", 1)):
        store_dir = os.path.join(root_dir, name)
        shutil.copytree(seed_dir, store_dir)
        runs[name] = _drive(store_dir, fast_lane_workers=fast_lane_workers)
    return runs["fifo"], runs["two-lane"]


def test_service_scheduler_dispatch(benchmark):
    with tempfile.TemporaryDirectory(prefix="bdservice-bench-") as root_dir:
        fifo, two_lane = benchmark.pedantic(
            run_dispatch_comparison, args=(root_dir,), rounds=1, iterations=1
        )

        # An index-mode warm submission re-runs the analysis but must
        # restore its posting lists rather than rebuild them.
        with StoreAwareScheduler(
            _config(os.path.join(root_dir, "seed"), mode="index"),
            workers=1, fast_lane_workers=1,
        ) as scheduler:
            job = scheduler.submit(benchmark_app_spec(0, scale=BENCH_SCALE))
            assert job.warm and job.lane == "fast"
            index_result = scheduler.wait(job.id, timeout=300).result
    assert index_result["index_restored"] is True
    assert index_result["index_build_seconds"] == 0.0

    # Every warm submission under both dispatchers skipped index builds.
    for run in (fifo, two_lane):
        for job in run["warm_jobs"]:
            assert job.result["index_build_seconds"] == 0.0, job.id
            assert job.result["store_hit"] is True, job.id

    rows = [
        [
            name,
            f"{run['stats']['lanes']['fast']['workers']}+"
            f"{run['stats']['lanes']['main']['workers']}",
            f"{run['warm_wait'] * 1e3:.1f}",
            f"{run['cold_wait'] * 1e3:.1f}",
            f"{run['wall']:.3f}",
            f"{run['stats']['warm_hit_rate']:.0%}",
        ]
        for name, run in (("fifo", fifo), ("two-lane", two_lane))
    ]
    speedup = (
        fifo["warm_wait"] / two_lane["warm_wait"]
        if two_lane["warm_wait"]
        else float("inf")
    )
    summary = (
        f"\nwarm mean wait: fifo {fifo['warm_wait'] * 1e3:.1f}ms vs "
        f"two-lane {two_lane['warm_wait'] * 1e3:.1f}ms "
        f"({speedup:.1f}x lower with store-aware dispatch); "
        f"{len(two_lane['warm_jobs'])} warm / "
        f"{SERVICE_APPS - len(two_lane['warm_jobs'])} cold submissions, "
        f"{TOTAL_WORKERS} total workers each"
    )
    emit_table(
        "service_scheduler",
        render_table(
            f"Store-aware dispatch over {SERVICE_APPS} mixed submissions "
            f"(scale {BENCH_SCALE})",
            ["Dispatch", "Fast+main", "Warm wait(ms)", "Cold wait(ms)",
             "Wall(s)", "Warm rate"],
            rows,
        )
        + summary,
    )

    assert two_lane["warm_wait"] < fifo["warm_wait"], (
        f"store-aware two-lane dispatch must complete warm jobs with a "
        f"lower mean queue wait than FIFO single-lane dispatch, got "
        f"{two_lane['warm_wait']:.4f}s vs {fifo['warm_wait']:.4f}s"
    )
