"""Unit tests for the class model and hierarchy queries."""

from repro.dex.builder import AppBuilder
from repro.dex.hierarchy import AccessFlags, ClassPool, DexClass, DexField, DexMethod
from repro.dex.types import FieldSignature, MethodSignature


def _sample_pool() -> ClassPool:
    """A small hierarchy: interface + super/child classes.

    ``SuperServer <- NetcastHttpServer <- ChildServer`` with interface
    ``Startable`` declaring ``void start()`` — the shapes that drive the
    basic/advanced search decisions of Sec. IV-A/B.
    """
    app = AppBuilder()

    startable = app.new_interface("com.x.Startable")
    startable.method("start", abstract=True)

    super_server = app.new_class("com.x.SuperServer", interfaces=["com.x.Startable"])
    sm = super_server.method("start")
    sm.return_void()

    server = app.new_class(
        "com.connectsdk.service.netcast.NetcastHttpServer",
        superclass="com.x.SuperServer",
    )
    m = server.method("start")
    m.return_void()
    p = server.method("helper", private=True)
    p.return_void()
    st = server.method("stat", static=True)
    st.return_void()
    ctor = server.constructor()
    ctor.return_void()

    child = app.new_class(
        "com.x.ChildServer",
        superclass="com.connectsdk.service.netcast.NetcastHttpServer",
    )
    other = child.method("other")
    other.return_void()

    overriding = app.new_class(
        "com.x.OverridingChild",
        superclass="com.connectsdk.service.netcast.NetcastHttpServer",
    )
    om = overriding.method("start")
    om.return_void()

    return app.build()


class TestAccessFlags:
    def test_render_contains_names(self):
        rendered = (AccessFlags.PUBLIC | AccessFlags.STATIC).dex_render()
        assert "PUBLIC" in rendered and "STATIC" in rendered
        assert rendered.startswith("0x")


class TestDexMethod:
    def test_signature_methods(self):
        pool = _sample_pool()
        server = pool.get("com.connectsdk.service.netcast.NetcastHttpServer")
        assert not server.find_method("start").is_signature_method()
        assert server.find_method("helper").is_signature_method()
        assert server.find_method("stat").is_signature_method()
        assert server.find_method("<init>").is_signature_method()

    def test_clinit_is_not_basic_signature_method(self):
        # <clinit> is static, but needs the special recursive search
        # (Sec. IV-C), never the basic one.
        cls = DexClass(name="com.a.B")
        clinit = cls.add_method(
            DexMethod(name="<clinit>", flags=AccessFlags.STATIC)
        )
        assert clinit.is_static_initializer
        assert not clinit.is_signature_method()

    def test_signature_construction(self):
        method = DexMethod(
            name="run", param_types=(), return_type="void",
            declaring_class="com.a.B",
        )
        assert method.signature() == MethodSignature("com.a.B", "run", (), "void")


class TestHierarchyQueries:
    def test_superclass_chain(self):
        pool = _sample_pool()
        chain = pool.superclass_chain("com.x.ChildServer")
        assert chain[0] == "com.connectsdk.service.netcast.NetcastHttpServer"
        assert chain[1] == "com.x.SuperServer"
        assert chain[-1] == "java.lang.Object"

    def test_all_subclasses(self):
        pool = _sample_pool()
        subs = {c.name for c in pool.all_subclasses(
            "com.connectsdk.service.netcast.NetcastHttpServer")}
        assert subs == {"com.x.ChildServer", "com.x.OverridingChild"}

    def test_is_subtype_of_class_and_interface(self):
        pool = _sample_pool()
        assert pool.is_subtype_of("com.x.ChildServer", "com.x.SuperServer")
        assert pool.is_subtype_of("com.x.ChildServer", "com.x.Startable")
        assert not pool.is_subtype_of("com.x.SuperServer", "com.x.ChildServer")

    def test_overrides_in_children_drives_search_signatures(self):
        # Sec. IV-A: a non-overloading child adds one more search
        # signature; an overloading child must not.
        pool = _sample_pool()
        sig = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        overrides = pool.overrides_in_children(sig)
        assert overrides["com.x.ChildServer"] is False
        assert overrides["com.x.OverridingChild"] is True

    def test_interface_declaring(self):
        pool = _sample_pool()
        iface = pool.interface_declaring("com.x.SuperServer", "void start()")
        assert iface == "com.x.Startable"
        assert pool.interface_declaring("com.x.SuperServer", "void nope()") is None

    def test_super_declaring(self):
        pool = _sample_pool()
        found = pool.super_declaring(
            "com.connectsdk.service.netcast.NetcastHttpServer", "void start()"
        )
        assert found == "com.x.SuperServer"

    def test_resolve_method_walks_supers(self):
        pool = _sample_pool()
        # ChildServer does not declare start(); resolution walks up.
        resolved = pool.resolve_method(
            MethodSignature("com.x.ChildServer", "start", (), "void")
        )
        assert resolved is not None
        assert resolved.declaring_class == (
            "com.connectsdk.service.netcast.NetcastHttpServer"
        )

    def test_resolve_field_walks_supers(self):
        app = AppBuilder()
        base = app.new_class("com.a.Base")
        base.field("PORT", "int", static=True)
        child = app.new_class("com.a.Child", superclass="com.a.Base")
        pool = app.build()
        resolved = pool.resolve_field(FieldSignature("com.a.Child", "PORT", "int"))
        assert resolved is not None
        assert resolved.declaring_class == "com.a.Base"

    def test_implementers_of(self):
        pool = _sample_pool()
        impls = {c.name for c in pool.implementers_of("com.x.Startable")}
        # Subclasses inherit the interface through SuperServer.
        assert "com.x.SuperServer" in impls
        assert "com.connectsdk.service.netcast.NetcastHttpServer" in impls
        assert "com.x.ChildServer" in impls


class TestClassPoolBasics:
    def test_duplicate_add_raises(self):
        pool = ClassPool([DexClass(name="com.a.B")])
        try:
            pool.add(DexClass(name="com.a.B"))
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError on duplicate class")

    def test_merge_multidex(self):
        first = ClassPool([DexClass(name="com.a.A")])
        second = ClassPool([DexClass(name="com.a.B")])
        first.merge(second)
        assert "com.a.B" in first and len(first) == 2

    def test_classes_using(self):
        pool = _sample_pool()
        # NetcastHttpServer's methods do not mention ChildServer.
        assert pool.classes_using("com.x.ChildServer") == []

    def test_method_count_counts_app_methods_only(self):
        pool = _sample_pool()
        framework = DexClass(name="android.app.Fake", is_framework=True)
        framework.add_method(DexMethod(name="x"))
        pool.add(framework)
        count_before = sum(len(c.methods) for c in pool.application_classes())
        assert pool.method_count() == count_before
