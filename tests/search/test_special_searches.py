"""Unit tests for the clinit, ICC and lifecycle searches (Sec. IV-C/D/E)."""

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature
from repro.search.clinit import clinit_reachability_search
from repro.search.icc import icc_search
from repro.search.index import BytecodeSearcher
from repro.search.lifecycle import (
    is_entry_handler,
    lifecycle_base_of,
    lifecycle_predecessor_handlers,
)


def _parts(apk):
    return BytecodeSearcher(apk.disassembly), apk.full_pool


class TestClinitSearch:
    def test_heyzap_chain_reaches_entry(self, heyzap):
        """The paper's example: APIClient <- AdModel <- Interstitial."""
        searcher, pool = _parts(heyzap)
        result = clinit_reachability_search(
            searcher, pool, heyzap.manifest, "com.heyzap.internal.APIClient"
        )
        assert result.reachable
        assert result.chain == (
            "com.heyzap.internal.APIClient",
            "com.heyzap.house.model.AdModel",
            "com.heyzap.sdk.ads.HeyzapInterstitialActivity",
        )

    def test_unused_class_clinit_unreachable(self, heyzap):
        app_classes = AppBuilder()
        orphan = app_classes.new_class("com.orphan.Config")
        clinit = orphan.static_initializer()
        clinit.put_static("com.orphan.Config", "KEY", "int", 1)
        clinit.return_void()
        pool = app_classes.build()
        for cls in heyzap.classes:
            pool.add(cls)
        apk = Apk(package="com.heyzap.demo", classes=pool, manifest=heyzap.manifest)
        searcher = BytecodeSearcher(apk.disassembly)
        result = clinit_reachability_search(
            searcher, apk.full_pool, apk.manifest, "com.orphan.Config"
        )
        assert not result.reachable
        assert result.chain == ()

    def test_entry_class_itself_is_reachable(self, heyzap):
        searcher, pool = _parts(heyzap)
        result = clinit_reachability_search(
            searcher, pool, heyzap.manifest,
            "com.heyzap.sdk.ads.HeyzapInterstitialActivity",
        )
        assert result.reachable
        assert len(result.chain) == 1


class TestIccSearch:
    def test_explicit_icc_two_time_merge(self, lg_tv_plus):
        """The Sec. IV-D example: const-class + startService in onCreate."""
        searcher, pool = _parts(lg_tv_plus)
        sites = icc_search(
            searcher, pool, lg_tv_plus.manifest, "com.lge.app1.fota.HttpServerService"
        )
        assert len(sites) == 1
        site = sites[0]
        assert site.caller.name == "onCreate"
        assert site.icc_api == "startService"
        assert site.match_kind == "explicit"

    def test_implicit_icc_action_match(self):
        app = AppBuilder()
        sender = app.new_class("com.a.Main", superclass="android.app.Activity")
        go = sender.method("onCreate", params=["android.os.Bundle"])
        this = go.this()
        go.param(0)
        action = go.const_string("com.a.ACTION_SYNC")
        intent = go.new_init("android.content.Intent", args=[action],
                             ctor_params=["java.lang.String"])
        go.invoke_virtual(this, "android.content.Context", "sendBroadcast",
                          args=[intent], params=["android.content.Intent"])
        go.return_void()
        receiver = app.new_class("com.a.SyncReceiver",
                                 superclass="android.content.BroadcastReceiver")
        receiver.default_constructor()
        recv = receiver.method(
            "onReceive",
            params=["android.content.Context", "android.content.Intent"],
        )
        recv.return_void()
        manifest = Manifest(package="com.a")
        manifest.register("com.a.Main", ComponentKind.ACTIVITY)
        manifest.register("com.a.SyncReceiver", ComponentKind.RECEIVER,
                          actions=["com.a.ACTION_SYNC"])
        apk = Apk(package="com.a", classes=app.build(), manifest=manifest)
        searcher, pool = _parts(apk)
        sites = icc_search(searcher, pool, manifest, "com.a.SyncReceiver")
        assert len(sites) == 1
        assert sites[0].match_kind == "implicit"
        assert sites[0].icc_api == "sendBroadcast"

    def test_call_without_matching_parameter_is_not_merged(self):
        # An ICC call in one method and the const-class in another must
        # not merge (the two-time search requires both in one method).
        app = AppBuilder()
        a = app.new_class("com.a.A", superclass="android.app.Activity")
        m1 = a.method("caller")
        this = m1.this()
        nul = m1.const_null("android.content.Intent")
        m1.invoke_virtual(this, "android.content.Context", "startService",
                          args=[nul], params=["android.content.Intent"],
                          returns="android.content.ComponentName")
        m1.return_void()
        m2 = a.method("mentioner")
        m2.const_class("com.a.TargetService")
        m2.return_void()
        svc = app.new_class("com.a.TargetService", superclass="android.app.Service")
        sm = svc.method("onCreate")
        sm.return_void()
        manifest = Manifest(package="com.a")
        manifest.register("com.a.TargetService", ComponentKind.SERVICE)
        apk = Apk(package="com.a", classes=app.build(), manifest=manifest)
        searcher, pool = _parts(apk)
        assert icc_search(searcher, pool, manifest, "com.a.TargetService") == []


class TestLifecycleSearch:
    def test_registered_handler_is_entry(self, lg_tv_plus):
        _, pool = _parts(lg_tv_plus)
        sig = MethodSignature(
            "com.lge.app1.MainActivity", "onCreate", ("android.os.Bundle",), "void"
        )
        assert lifecycle_base_of(pool, sig) == "android.app.Activity"
        assert is_entry_handler(pool, lg_tv_plus.manifest, sig)

    def test_unregistered_component_handler_is_not_entry(self):
        # The shape behind Amandroid's false positives: a component class
        # that never appears in the manifest.
        app = AppBuilder()
        ghost = app.new_class(
            "jp.kemco.activation.TstoreActivation", superclass="android.app.Activity"
        )
        m = ghost.method("onCreate", params=["android.os.Bundle"])
        m.return_void()
        apk = Apk(package="com.a", classes=app.build(),
                  manifest=Manifest(package="com.a"))
        _, pool = _parts(apk)
        sig = MethodSignature(
            "jp.kemco.activation.TstoreActivation", "onCreate",
            ("android.os.Bundle",), "void",
        )
        assert lifecycle_base_of(pool, sig) == "android.app.Activity"
        assert not is_entry_handler(pool, apk.manifest, sig)

    def test_predecessor_handlers_on_demand(self):
        app = AppBuilder()
        act = app.new_class("com.a.Main", superclass="android.app.Activity")
        oc = act.method("onCreate", params=["android.os.Bundle"])
        oc.return_void()
        os_ = act.method("onStart")
        os_.return_void()
        orr = act.method("onResume")
        orr.return_void()
        manifest = Manifest(package="com.a")
        manifest.register("com.a.Main", ComponentKind.ACTIVITY)
        apk = Apk(package="com.a", classes=app.build(), manifest=manifest)
        _, pool = _parts(apk)
        on_resume = MethodSignature("com.a.Main", "onResume", (), "void")
        predecessors = lifecycle_predecessor_handlers(pool, on_resume)
        # onStart is declared; onPause is not -> only onStart returned.
        assert [p.name for p in predecessors] == ["onStart"]
        on_start = MethodSignature("com.a.Main", "onStart", (), "void")
        assert [p.name for p in lifecycle_predecessor_handlers(pool, on_start)] == [
            "onCreate"
        ]

    def test_non_lifecycle_method_has_no_base(self, lg_tv_plus):
        _, pool = _parts(lg_tv_plus)
        sig = MethodSignature(
            "com.connectsdk.service.NetcastTVService", "connect", (), "void"
        )
        assert lifecycle_base_of(pool, sig) is None
