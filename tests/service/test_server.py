"""HTTP round-trip tests: ServiceClient against a live AnalysisServer."""

import pytest

from repro.core import BackDroidConfig, analyze_spec
from repro.service import AnalysisServer, ServiceClient, StoreAwareScheduler
from repro.workload.corpus import benchmark_app_spec

SCALE = 0.05


@pytest.fixture
def service(tmp_path):
    """A running server over a store pre-warmed with bench app 0."""
    config = BackDroidConfig(
        search_backend="indexed",
        store_dir=str(tmp_path / "store"),
        store_mode="full",
    )
    outcome = analyze_spec(benchmark_app_spec(0, scale=SCALE), config)
    assert outcome.ok, outcome.error
    scheduler = StoreAwareScheduler(config, workers=2, fast_lane_workers=1)
    with AnalysisServer(scheduler, port=0) as server:
        yield ServiceClient(*server.address)


class TestEndpoints:
    def test_healthz(self, service):
        assert service.health() == {"ok": True}

    def test_submit_poll_done_round_trip(self, service):
        job = service.submit({"app": "bench:0", "scale": SCALE})
        assert job["state"] in ("queued", "running", "done")
        assert job["lane"] == "fast" and job["warm"] is True
        assert job["package"] == "com.bench.app000"

        done = service.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        assert done["result"]["package"] == "com.bench.app000"
        assert done["result"]["store_hit"] is True
        assert done["result"]["index_build_seconds"] == 0.0
        assert done["wait_seconds"] >= 0.0

    def test_cold_submission_rides_main_lane(self, service):
        job = service.submit({"app": "bench:2", "scale": SCALE})
        assert job["lane"] == "main" and job["warm"] is False
        done = service.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        assert done["result"]["store_hit"] is False

    def test_year_submission_shape(self, service):
        job = service.submit({"year": 2015, "index": 0, "scale": SCALE})
        assert job["package"] == "com.corpus.y2015.app00000"
        assert service.wait(job["id"], timeout=60)["state"] == "done"

    def test_duplicate_http_submissions_share_one_result(
        self, tmp_path, monkeypatch
    ):
        # Hold the analysis until both submissions are accepted, so the
        # concurrent-duplicate path is exercised deterministically.
        import threading

        import repro.service.scheduler as scheduler_module

        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None):
            release.wait(timeout=30)
            return real(spec, config)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        config = BackDroidConfig(
            search_backend="indexed", store_dir=str(tmp_path / "store")
        )
        scheduler = StoreAwareScheduler(config, workers=1)
        with AnalysisServer(scheduler, port=0) as server:
            client = ServiceClient(*server.address)
            first = client.submit({"app": "bench:3", "scale": SCALE})
            second = client.submit({"app": "bench:3", "scale": SCALE})
            assert second["coalesced_into"] == first["id"]
            release.set()
            first_done = client.wait(first["id"], timeout=60)
            second_done = client.wait(second["id"], timeout=60)
            assert first_done["state"] == second_done["state"] == "done"
            assert first_done["result"] == second_done["result"]
            stats = client.stats()
        assert stats["jobs"]["dedup_hits"] == 1
        assert stats["analyses_run"] == 1  # one analysis, two done jobs

    def test_jobs_listing_and_stats(self, service):
        submitted = service.submit({"app": "bench:0", "scale": SCALE})
        service.wait(submitted["id"], timeout=60)
        listed = {job["id"] for job in service.jobs()}
        assert submitted["id"] in listed
        stats = service.stats()
        assert {"lanes", "jobs", "store", "warm_hit_rate"} <= set(stats)


class TestErrors:
    def test_unknown_job_is_404(self, service):
        assert service.job("job-424242") is None

    def test_bad_spec_is_400(self, service):
        with pytest.raises(ValueError, match="bench:<index>"):
            service.submit({"app": "not-a-spec"})
        with pytest.raises(ValueError, match="must be one of"):
            service.submit({"year": 1999})
        with pytest.raises(ValueError, match="'scale'"):
            service.submit({"app": "bench:0", "scale": -1})
        # Client-supplied scale is bounded: huge or non-finite values
        # must be a 400, not a wedged worker or a handler crash.
        with pytest.raises(ValueError, match="'scale'"):
            service.submit({"app": "bench:0", "scale": 1e308})
        with pytest.raises(ValueError, match="'scale'"):
            service.submit({"app": "bench:0", "scale": 11})
        with pytest.raises(ValueError, match="needs 'app'"):
            service.submit({})

    def test_unknown_endpoint_is_404(self, service):
        status, payload = service._request("GET", "/v1/nope")
        assert status == 404 and "error" in payload
        status, _ = service._request("POST", "/v1/nope", {"x": 1})
        assert status == 404

    def test_empty_body_is_400(self, service):
        status, payload = service._request("POST", "/v1/jobs")
        assert status == 400 and "error" in payload


class TestShutdownDrain:
    def test_shutdown_drains_accepted_jobs(self, tmp_path):
        config = BackDroidConfig(
            search_backend="indexed", store_dir=str(tmp_path / "store")
        )
        scheduler = StoreAwareScheduler(config, workers=2)
        server = AnalysisServer(scheduler, port=0).start()
        client = ServiceClient(*server.address)
        jobs = [
            client.submit({"app": f"bench:{i}", "scale": SCALE})
            for i in range(4)
        ]
        server.shutdown(drain=True)  # stop listening, finish the queue
        states = {scheduler.queue.get(job["id"]).state for job in jobs}
        assert states == {"done"}
