"""Bytecode substrate: a DEX-like in-memory bytecode model.

This package plays the role that ``dexdump`` + Soot's Shimple IR play in the
original BackDroid system:

* :mod:`repro.dex.types` — type descriptors and method/field signatures, with
  bidirectional translation between the Soot textual format
  (``<com.a.B: void start(int)>``) and the dexdump textual format
  (``Lcom/a/B;.start:(I)V``).  BackDroid performs this translation each time
  it crosses from the *program analysis space* into the *bytecode search
  space* (Fig. 3, steps 1 and 3 of the paper).
* :mod:`repro.dex.instructions` — a Shimple-like SSA intermediate
  representation: the statement and expression taxonomy the paper enumerates
  in Sec. V (``DefinitionStmt``/``AssignStmt``/``InvokeStmt``/``ReturnStmt``
  and ``BinopExpr``/``CastExpr``/``InvokeExpr``/``NewExpr``/``NewArrayExpr``/
  ``PhiExpr``).
* :mod:`repro.dex.hierarchy` — classes, methods, fields and class-hierarchy
  queries (sub/super types, interface implementers, virtual dispatch).
* :mod:`repro.dex.builder` — a fluent DSL for authoring classes and method
  bodies; used by tests and by the synthetic workload generator.
* :mod:`repro.dex.disassembler` — a dexdump-style plaintext renderer.  The
  emitted text is what the on-the-fly bytecode search of
  :mod:`repro.search` operates on.
"""

from repro.dex.types import (
    FieldSignature,
    MethodSignature,
    dex_to_java_type,
    java_to_dex_type,
)
from repro.dex.instructions import (
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    ClassConstant,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InstanceFieldRef,
    IntConstant,
    InvokeExpr,
    InvokeKind,
    InvokeStmt,
    Local,
    NewArrayExpr,
    NewExpr,
    NullConstant,
    ParameterRef,
    PhiExpr,
    ReturnStmt,
    StaticFieldRef,
    StringConstant,
    ThisRef,
    ThrowStmt,
)
from repro.dex.hierarchy import AccessFlags, ClassPool, DexClass, DexField, DexMethod
from repro.dex.builder import AppBuilder, ClassBuilder, MethodBuilder
from repro.dex.disassembler import Disassembly, MethodBlock, disassemble

__all__ = [
    "AccessFlags",
    "AppBuilder",
    "ArrayRef",
    "AssignStmt",
    "BinopExpr",
    "CastExpr",
    "ClassBuilder",
    "ClassConstant",
    "ClassPool",
    "DexClass",
    "DexField",
    "DexMethod",
    "Disassembly",
    "FieldSignature",
    "GotoStmt",
    "IdentityStmt",
    "IfStmt",
    "InstanceFieldRef",
    "IntConstant",
    "InvokeExpr",
    "InvokeKind",
    "InvokeStmt",
    "Local",
    "MethodBlock",
    "MethodBuilder",
    "MethodSignature",
    "NewArrayExpr",
    "NewExpr",
    "NullConstant",
    "ParameterRef",
    "PhiExpr",
    "ReturnStmt",
    "StaticFieldRef",
    "StringConstant",
    "ThisRef",
    "ThrowStmt",
    "dex_to_java_type",
    "disassemble",
    "java_to_dex_type",
]
