"""Fig. 8 — the distribution of Amandroid analysis time.

Paper distribution (timeout = 300 paper-minutes; 141 analyzed apps):

    1m-5m: 16   5m-10m: 8   10m-30m: 27   30m-100m: 23
    100m-300m: 17   Timeout: 50  (35% timed out; no app under 1 minute)

Shape to reproduce: a heavy right tail with roughly a third of the
corpus hitting the timeout, and essentially nothing finishing in the
fastest bucket.
"""

from benchmarks.conftest import (
    bucket_histogram,
    emit_table,
    render_table,
    run_corpus,
    to_paper_minutes,
)

_PAPER_BUCKETS = {
    "1m-5m": 16,
    "5m-10m": 8,
    "10m-30m": 27,
    "30m-100m": 23,
    "100m-300m": 17,
    "Timeout": 50,
}

_EDGES = [
    ("0m-1m", 0.0, 1.0),
    ("1m-5m", 1.0, 5.0),
    ("5m-10m", 5.0, 10.0),
    ("10m-30m", 10.0, 30.0),
    ("30m-100m", 30.0, 100.0),
    ("100m-300m", 100.0, 300.0),
]


def test_fig8_amandroid_time_distribution(benchmark):
    rows = benchmark.pedantic(run_corpus, rounds=1, iterations=1)

    analyzed = [r for r in rows if r.am_error is None]
    finished = [r for r in analyzed if not r.am_timed_out]
    timed_out = [r for r in analyzed if r.am_timed_out]
    minutes = [to_paper_minutes(r.am_seconds) for r in finished]
    histogram = bucket_histogram(minutes, _EDGES)
    histogram["Timeout"] = len(timed_out)

    table_rows = [
        [label, str(count), str(_PAPER_BUCKETS.get(label, "-"))]
        for label, count in histogram.items()
        if count or label in _PAPER_BUCKETS
    ]
    timeout_share = len(timed_out) / len(analyzed)
    summary = (
        f"\ntimeouts: {len(timed_out)}/{len(analyzed)} "
        f"({timeout_share:.0%}, paper: 35%)"
    )
    emit_table(
        "fig8_amandroid_times",
        render_table(
            "Fig. 8: Amandroid-style analysis-time distribution",
            ["Bucket", "#Apps", "#Apps(paper)"],
            table_rows,
        )
        + summary,
    )

    # Shape assertions.
    assert 0.15 <= timeout_share <= 0.55, "timeout share near the paper's 35%"
    fastest = histogram.get("0m-1m", 0)
    assert fastest <= len(analyzed) * 0.1, "almost nothing under 1 paper-min"
