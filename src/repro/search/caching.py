"""Search caching and sink-API-call caching (Sec. IV-F).

Two distinct caches, with the statistics the paper reports:

* :class:`SearchCommandCache` — "cache different search commands and
  their corresponding results", at several granularities (invoked-class
  search, caller-method search, field search, raw commands).  The paper
  measures an average per-app command cache rate of 23.39% (min 2.97%,
  max 88.95%).
* :class:`SinkReachabilityCache` — "cache each sink API's callee method
  signature and its reachability", so multiple sink calls hosted by one
  unreachable method are analyzed once.  The paper measures an average
  per-app sink cache rate of 13.86% (max 68.18%).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.dex.types import MethodSignature


@dataclass
class CacheStats:
    """Hit/miss counters with the paper's "cache rate" definition."""

    lookups: int = 0
    hits: int = 0
    #: Entries dropped by LRU eviction (0 for unbounded caches).
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def record(self, hit: bool) -> None:
        self.lookups += 1
        if hit:
            self.hits += 1


class SearchCommandCache:
    """Caches raw search commands and their results.

    Keys are the literal search command strings (e.g. the escaped regex a
    signature search runs), which matches the paper's "caching of various
    raw search commands"; higher-level granularities (invoked-class,
    caller-method, field searches) key through the same store with a
    kind prefix.

    ``max_entries`` bounds the store with least-recently-used eviction
    (evictions are counted in ``stats.evictions``) so corpus-scale batch
    runs cannot grow memory without limit.  The default stays unbounded,
    preserving the paper's cache-rate numbers.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be a positive integer or None")
        self.max_entries = max_entries
        self._store: OrderedDict[str, Any] = OrderedDict()
        self.stats = CacheStats()
        self.stats_by_kind: dict[str, CacheStats] = {}

    def get_or_run(self, kind: str, command: str, run: Callable[[], Any]) -> Any:
        """Return the cached result for (kind, command), running once."""
        key = f"{kind}:{command}"
        by_kind = self.stats_by_kind.setdefault(kind, CacheStats())
        if key in self._store:
            self.stats.record(hit=True)
            by_kind.record(hit=True)
            if self.max_entries is not None:
                self._store.move_to_end(key)
            return self._store[key]
        self.stats.record(hit=False)
        by_kind.record(hit=False)
        result = run()
        self._store[key] = result
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.stats.evictions += 1
        return result

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()


class SinkReachabilityCache:
    """Caches, per containing method, whether its sink calls are reachable.

    "If one sink API call is located in a method that has been analyzed
    and is not reachable, we then do not analyze this sink API call any
    more." (Sec. IV-F)
    """

    def __init__(self) -> None:
        self._reachable: dict[MethodSignature, bool] = {}
        self.stats = CacheStats()

    def lookup(self, containing_method: MethodSignature) -> Optional[bool]:
        """The cached verdict, recording a hit/miss either way."""
        verdict = self._reachable.get(containing_method)
        self.stats.record(hit=verdict is not None)
        return verdict

    def store(self, containing_method: MethodSignature, reachable: bool) -> None:
        self._reachable[containing_method] = reachable

    def __len__(self) -> int:
        return len(self._reachable)
