"""The content-addressed on-disk artifact store.

Market-scale vetting re-analyzes the same corpus again and again
(new sink rules, new detector versions, re-runs after crashes), yet the
per-app preprocessing — disassembly tokenization and the inverted-index
posting lists — is identical across runs as long as the app's bytecode
is unchanged.  This store persists those artifacts on disk so a second
batch run over an unchanged corpus restores each app's index instead of
rebuilding it, and (in ``"full"`` mode) restores the finished per-app
outcome instead of re-analyzing.

Artifacts are **sharded**: an app's token stream and posting lists are
split per class group (consecutive classes under one library prefix —
see :mod:`repro.store.sharding`), each shard is keyed by a sha256 of its
position-independent content, and the app entry stores a *manifest*
listing shard keys instead of a monolithic blob.  Two apps embedding the
same library therefore persist that library's artifacts exactly once,
and restoring an app composes its shards back into a byte-identical
token stream and index.

Layout (see ``docs/STORE_FORMAT.md`` for the full spec)::

    <root>/objects/<key[:2]>/<key>/
        manifest.json           ordered shard references + line offsets
        outcome-<config>.json   one finished batch outcome per config
    <root>/shards/<sha[:2]>/<sha>.bin
        one class group, v3 binary container (struct-packed sections;
        see :mod:`repro.store.binshard`): relative tokens + prefolded
        mini-index
    <root>/shards/<sha[:2]>/<sha>.json
        the same content in the legacy v2 JSON container — still
        readable; ``gc``/``warm``/``migrate`` convert it in place
    <root>/specmap/<fp[:2]>/<fp>.json
        app-spec fingerprint -> disassembly content key

Restores are **lazy**: a fully binary warm entry returns a
:class:`~repro.store.lazy.LazyTokenIndex` that mmaps each shard and
materializes a group's posting lists only when a query touches it, so
warm sessions pay decode cost proportional to the groups they query,
not to the app's size.

Concurrency: batch runs write from many pool processes at once.  Every
write goes to a same-directory temp file first and is published with an
atomic :func:`os.replace`, so concurrent readers only ever see absent or
complete entries — never a torn file.  Duplicate writers race benignly
(last rename wins; the content is identical by construction).

Corruption and staleness are handled by treating every unreadable,
version-mismatched or key-mismatched entry as a miss: the caller falls
back to a fresh build and overwrites the entry.  A manifest pointing at
a *missing or corrupt shard* is patched in place when the caller holds
the disassembly (only the damaged groups are re-folded — incremental
re-indexing), and reads as a plain miss otherwise.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.dex.disassembler import Disassembly, LineToken
from repro.search.backends.indexed import TokenIndex
from repro.store.binshard import (
    LazyShardView,
    ShardCorrupt,
    ShardStale,
    decode_shard,
    encode_shard,
)
from repro.store.lazy import DEFAULT_GROUP_CACHE, LazyTokenIndex
from repro.store.sharding import (
    KEY_VERSION,
    ShardGroup,
    compose_index,
    compose_tokens,
    fold_group,
    partition_disassembly,
    shard_key,
    shard_payload,
    tokens_from_shard,
)

#: The *container* version new writers publish.  v2 introduced the
#: shard/manifest layout (v1 monolithic entries read as misses and are
#: swept by ``gc``); v3 re-encodes shards as the mmap-friendly binary
#: container.  v3 changed no logical content, so content addresses
#: still hash under :data:`~repro.store.sharding.KEY_VERSION` and v2
#: JSON artifacts remain readable (see :data:`COMPAT_VERSIONS`) until
#: migrated in place.
FORMAT_VERSION = 3

#: Container versions the read path accepts.  Anything else — v1, or a
#: future writer — reads as stale and is rebuilt/swept.
COMPAT_VERSIONS = (2, FORMAT_VERSION)

#: The legacy JSON container version (what ``shard_format="json"``
#: handles write, for tooling that must produce v2 stores).
LEGACY_FORMAT_VERSION = 2


@dataclass
class StoreStats:
    """Hit/miss counters for one store root (one process's view).

    Shared by every :class:`ArtifactStore` handle on the same root in
    this process — configs hand out fresh handles per analysis, and a
    per-handle view would read as permanently zero to anything
    monitoring the aggregate (the service's ``/v1/stats``).  Counter
    bumps are single ``int`` operations, so sharing across worker
    threads is safe.
    """

    index_hits: int = 0
    index_misses: int = 0
    #: Index restores where some (not all) shards were present: the
    #: missing groups were re-folded and published, the rest composed
    #: from disk.
    partial_hits: int = 0
    token_hits: int = 0
    token_misses: int = 0
    outcome_hits: int = 0
    outcome_misses: int = 0
    #: Per-shard read results across all composed restores.
    shard_hits: int = 0
    shard_misses: int = 0
    #: Shards re-folded from a live disassembly to repair a partial
    #: entry (the incremental re-indexing path).
    shards_patched: int = 0
    #: Shards a save skipped because identical content was already
    #: published (by this app earlier, or by another app sharing the
    #: class group — the cross-app dedup counter).
    shards_shared: int = 0
    writes: int = 0
    #: Entries that existed but were unreadable or failed validation
    #: (torn JSON, wrong version, key mismatch) and fell back to a miss.
    corrupt_entries: int = 0
    #: Index hits served as a :class:`~repro.store.lazy.LazyTokenIndex`
    #: (mmapped binary shards; groups decode on first query).
    lazy_restores: int = 0
    #: Shard groups lazily decoded across every lazy restore, re-faults
    #: after LRU eviction included.
    groups_materialized: int = 0
    #: Decoded groups dropped by the lazy index's LRU bound (each later
    #: re-touch is a re-fault counted in ``groups_materialized``).
    group_cache_evictions: int = 0
    #: Legacy JSON shards converted to the binary container in place
    #: (``gc``/``warm``/``migrate``).
    shards_migrated: int = 0
    #: Specmap writes suppressed by an installed advisory guard (a
    #: cluster node that does not hold the specmap lease).
    specmap_writes_skipped: int = 0

    def as_dict(self) -> dict:
        """All counters as a JSON-able dict (service ``/v1/stats``)."""
        return {
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "partial_hits": self.partial_hits,
            "token_hits": self.token_hits,
            "token_misses": self.token_misses,
            "outcome_hits": self.outcome_hits,
            "outcome_misses": self.outcome_misses,
            "shard_hits": self.shard_hits,
            "shard_misses": self.shard_misses,
            "shards_patched": self.shards_patched,
            "shards_shared": self.shards_shared,
            "writes": self.writes,
            "corrupt_entries": self.corrupt_entries,
            "lazy_restores": self.lazy_restores,
            "groups_materialized": self.groups_materialized,
            "group_cache_evictions": self.group_cache_evictions,
            "shards_migrated": self.shards_migrated,
            "specmap_writes_skipped": self.specmap_writes_skipped,
        }


@dataclass
class StoreInventory:
    """What ``describe`` reports: the on-disk shape of a store.

    Alongside raw entry/file counts, carries the cross-app dedup
    accounting: ``logical_shard_bytes`` is what the store would hold if
    every app persisted its shards privately (each manifest reference
    paid in full); ``shard_bytes`` is what sharing actually costs.
    """

    root: str
    entries: int = 0
    files_by_kind: dict[str, int] = field(default_factory=dict)
    total_bytes: int = 0
    #: Unique shard files on disk.
    shards: int = 0
    #: Bytes held by unique shard files.
    shard_bytes: int = 0
    #: Manifest -> shard references across all app entries (>= shards
    #: once any two apps share a class group).
    shard_refs: int = 0
    #: Bytes the referenced shards would occupy without dedup.
    logical_shard_bytes: int = 0
    #: Shard files still in the legacy v2 JSON container (``store
    #: migrate`` converts them; 0 on a fully migrated store).
    legacy_json_shards: int = 0

    @property
    def bytes_saved(self) -> int:
        """Bytes cross-app sharding avoided storing."""
        return max(0, self.logical_shard_bytes - self.shard_bytes)

    @property
    def dedup_ratio(self) -> float:
        """Logical over physical shard bytes (1.0 = no sharing yet)."""
        return (
            self.logical_shard_bytes / self.shard_bytes
            if self.shard_bytes
            else 1.0
        )

    def render(self) -> str:
        """A human-readable multi-line summary (``store stats``)."""
        lines = [
            f"store at {self.root}",
            f"  entries     : {self.entries}",
            f"  total bytes : {self.total_bytes}",
            f"  shards      : {self.shards} unique "
            f"({self.shard_refs} reference(s))",
            f"  shard bytes : {self.shard_bytes} "
            f"(logical {self.logical_shard_bytes}, "
            f"saved {self.bytes_saved})",
            f"  dedup ratio : {self.dedup_ratio:.2f}x",
            f"  containers  : {self.shards - self.legacy_json_shards} "
            f"binary, {self.legacy_json_shards} legacy JSON",
        ]
        for kind in sorted(self.files_by_kind):
            lines.append(f"  {kind:11} : {self.files_by_kind[kind]} file(s)")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """The machine-readable snapshot (``store stats --json``)."""
        return {
            "root": self.root,
            "entries": self.entries,
            "files_by_kind": dict(self.files_by_kind),
            "total_bytes": self.total_bytes,
            "shards": self.shards,
            "shard_bytes": self.shard_bytes,
            "shard_refs": self.shard_refs,
            "logical_shard_bytes": self.logical_shard_bytes,
            "bytes_saved": self.bytes_saved,
            "dedup_ratio": self.dedup_ratio,
            "legacy_json_shards": self.legacy_json_shards,
        }


@dataclass
class GcResult:
    """What one :meth:`ArtifactStore.gc` sweep removed."""

    entries_removed: int = 0
    shards_removed: int = 0
    bytes_reclaimed: int = 0
    #: Surviving legacy JSON shards converted to the binary container
    #: during the sweep (binary-format stores only).
    shards_migrated: int = 0


@dataclass
class MigrateResult:
    """What one :meth:`ArtifactStore.migrate` pass converted."""

    shards_migrated: int = 0
    #: Legacy shards that failed validation and were left in place (a
    #: live run patches them from the disassembly instead).
    shards_failed: int = 0
    #: JSON bytes dropped minus binary bytes added (the container is
    #: denser, so this is normally positive).
    bytes_reclaimed: int = 0


#: Warm-hit classification levels a probe can report, warmest first:
#: a finished outcome for the probed config beats a fully restorable
#: index (every shard present), which beats a partially restorable one
#: (some shards present; the rest are patched from the disassembly),
#: which beats nothing.
PROBE_LEVELS = ("outcome", "index", "partial", "none")

#: Levels the schedulers treat as warm (cheap enough for a fast lane).
#: A partial hit qualifies: composing the present shards and re-folding
#: only the missing groups is far cheaper than a cold build.
WARM_LEVELS = ("outcome", "index", "partial")


@dataclass(frozen=True)
class StoreProbe:
    """The warmest artifact level present for one content key."""

    key: str
    level: str
    #: Shard groups the entry's manifest references (0 when no manifest
    #: is published for the key).
    shards_total: int = 0
    #: How many of those shards are currently on disk.
    shards_present: int = 0

    @property
    def warm(self) -> bool:
        """Whether a scheduler should route this key to the fast lane."""
        return self.level in WARM_LEVELS


@dataclass(frozen=True)
class VerifyEntry:
    """One entry's verdict from :meth:`ArtifactStore.verify`.

    Failing statuses are ``mismatch`` (a shard's stored mini-index
    diverges from a re-fold of its own token stream, or its content
    hash no longer matches its name), ``corrupt`` (unreadable or
    key-mismatched payload) and ``missing-shard`` (the manifest
    references a shard that is gone — a live run patches it, so it is
    flagged rather than fatal).  ``no-index`` (outcome-only entry) and
    ``stale`` (older format version — the runtime load path treats
    these as harmless misses and rebuilds) are skips, not failures.
    """

    key: str
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True for passing and skip statuses (non-failures)."""
        return self.status in ("ok", "no-index", "stale")


def store_key(disassembly: Disassembly) -> str:
    """The content address of one app's disassembly (memoized).

    Hashes every plaintext line plus the :data:`KEY_VERSION`, so any
    bytecode change — or any change to the hashed content itself —
    yields a different key and naturally invalidates stale entries.
    The *container* version is deliberately absent: re-encoding shards
    (v2 JSON -> v3 binary) must not orphan every stored entry.
    """
    cached = getattr(disassembly, "_store_key_cache", None)
    if cached is None:
        digest = hashlib.sha256()
        digest.update(f"backdroid-store-v{KEY_VERSION}\n".encode())
        # One join + one update: the C fast path.  A trailing newline
        # terminates the last line so "a", "b" never collides with
        # "a\nb" split differently.
        digest.update(
            ("\n".join(disassembly.lines) + "\n").encode(
                "utf-8", "surrogatepass"
            )
        )
        cached = digest.hexdigest()
        disassembly._store_key_cache = cached
    return cached


#: One shared StoreStats per store root per process (see StoreStats).
_STATS_BY_ROOT: dict[str, StoreStats] = {}

#: Advisory per-root predicates consulted before specmap writes.  A
#: cluster node installs one so only the lease holder publishes spec →
#: key mappings (see :mod:`repro.service.cluster`); the registry lives
#: at module level so every handle on the root — including ones
#: constructed inside forked cold workers — sees the same policy.
_SPECMAP_GUARDS: dict[str, Callable[[], bool]] = {}


def set_specmap_guard(
    root, guard: Optional[Callable[[], bool]] = None
) -> None:
    """Install (or clear, with ``guard=None``) a specmap write guard.

    The guard is called with no arguments just before each
    :meth:`ArtifactStore.save_spec_key` write on ``root``; returning
    False suppresses the write (counted as ``specmap_writes_skipped``).
    The predicate must rely on on-disk state only: cold worker
    processes forked after installation re-evaluate it independently.
    """
    key = os.path.abspath(str(root))
    if guard is None:
        _SPECMAP_GUARDS.pop(key, None)
    else:
        _SPECMAP_GUARDS[key] = guard


class ArtifactStore:
    """A content-addressed warm-start store rooted at one directory.

    Handles are cheap to construct and safe to build per process: all
    state lives on disk, and every publish is an atomic rename.
    """

    #: Container formats a handle can write.  ``"binary"`` (default)
    #: publishes v3 mmap-friendly shards and serves lazy restores;
    #: ``"json"`` emulates a v2-era writer — legacy JSON shards and
    #: version-2 payloads, eager restores — for migration tooling,
    #: A/B benchmarks and fixtures.
    SHARD_FORMATS = ("binary", "json")

    def __init__(
        self,
        root,
        shard_format: str = "binary",
        group_cache: int = DEFAULT_GROUP_CACHE,
    ) -> None:
        """Open (lazily) the store rooted at ``root``; never touches
        disk until the first read or write.  ``group_cache`` bounds how
        many materialized groups each lazy restore keeps resident."""
        if shard_format not in self.SHARD_FORMATS:
            raise ValueError(
                f"unknown shard format {shard_format!r}: "
                f"choose from {self.SHARD_FORMATS}"
            )
        self.root = Path(root)
        self.shard_format = shard_format
        self._group_cache = group_cache
        self._write_version = (
            FORMAT_VERSION if shard_format == "binary"
            else LEGACY_FORMAT_VERSION
        )
        self.stats = _STATS_BY_ROOT.setdefault(
            os.path.abspath(str(self.root)), StoreStats()
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def entry_dir(self, key: str) -> Path:
        """The directory holding one app key's manifest and outcomes."""
        return self.root / "objects" / key[:2] / key

    def _manifest_path(self, key: str) -> Path:
        return self.entry_dir(key) / "manifest.json"

    def _shard_path_bin(self, sha: str) -> Path:
        return self.root / "shards" / sha[:2] / f"{sha}.bin"

    def _shard_path_json(self, sha: str) -> Path:
        return self.root / "shards" / sha[:2] / f"{sha}.json"

    def _shard_path(self, sha: str) -> Path:
        """Where *this handle's* configured format publishes a shard."""
        if self.shard_format == "binary":
            return self._shard_path_bin(sha)
        return self._shard_path_json(sha)

    def _find_shard(self, sha: str) -> Optional[Path]:
        """The on-disk file (either container) holding ``sha``, if any."""
        for path in (self._shard_path_bin(sha), self._shard_path_json(sha)):
            if path.is_file():
                return path
        return None

    def _shard_present(self, sha: str) -> bool:
        """Stat/size-only presence probe — never parses a payload.

        Advisory paths (scheduler probes, publish dedup, gc refcounts)
        call this per shard; decoding there would make every probe cost
        O(shard bytes) instead of one ``stat``.
        """
        for path in (self._shard_path_bin(sha), self._shard_path_json(sha)):
            try:
                if path.stat().st_size > 0:
                    return True
            except OSError:
                continue
        return False

    def _outcome_path(self, key: str, config_fingerprint: str) -> Path:
        return self.entry_dir(key) / f"outcome-{config_fingerprint}.json"

    def _spec_path(self, spec_fingerprint: str) -> Path:
        return (
            self.root / "specmap" / spec_fingerprint[:2]
            / f"{spec_fingerprint}.json"
        )

    # ------------------------------------------------------------------
    # Raw I/O (atomic writes, torn-read tolerant reads)
    # ------------------------------------------------------------------
    def _write_json(self, path: Path, payload: dict) -> None:
        self._write_bytes(
            path,
            json.dumps(payload, separators=(",", ":")).encode(
                "utf-8", "surrogatepass"
            ),
        )

    def _write_bytes(self, path: Path, data: bytes) -> None:
        """Publish ``data`` at ``path`` via the atomic-rename path."""
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def _read_json(self, path: Path, key: str) -> Optional[dict]:
        """A validated payload, or None for missing/corrupt/stale entries."""
        status, payload = self._classify_payload(path, key)
        if status == "ok":
            return payload
        if status in ("corrupt", "stale"):
            self.stats.corrupt_entries += 1
        return None

    def _classify_payload(
        self, path: Path, key: str
    ) -> tuple[str, Optional[dict]]:
        """``(status, payload)`` distinguishing stale entries from rot.

        ``"ok"`` / ``"missing"`` / ``"corrupt"`` / ``"stale"`` — unlike
        :meth:`_read_json` (where every non-hit is simply a miss), the
        verifier must not report an *older-format* entry as corruption:
        the live load path rebuilds those harmlessly.
        """
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return "missing", None
        except (OSError, UnicodeDecodeError):
            return "corrupt", None
        try:
            payload = json.loads(raw)
        except ValueError:
            return "corrupt", None
        if not isinstance(payload, dict):
            return "corrupt", None
        if payload.get("version") not in COMPAT_VERSIONS:
            return "stale", None
        if payload.get("key") != key:
            return "corrupt", None
        return "ok", payload

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def _groups(self, disassembly: Disassembly) -> list[tuple[ShardGroup, str]]:
        """The disassembly's shard groups plus their content keys.

        Memoized on the disassembly: partitioning and hashing are paid
        once per app even when save/load/patch paths all run.
        """
        cached = getattr(disassembly, "_shard_groups_cache", None)
        if cached is None:
            cached = [
                (group, shard_key(group))
                for group in partition_disassembly(disassembly)
            ]
            disassembly._shard_groups_cache = cached
        return cached

    def _write_shard(self, group: ShardGroup, sha: str) -> dict:
        """Publish one shard in this handle's container format."""
        payload = shard_payload(group, sha, self._write_version)
        if self.shard_format == "binary":
            self._write_bytes(
                self._shard_path_bin(sha), encode_shard(payload, sha)
            )
        else:
            self._write_json(self._shard_path_json(sha), payload)
        return payload

    def _publish_entry(self, disassembly: Disassembly) -> None:
        """Write any missing shards plus the app's manifest.

        A shard whose content key already exists on disk — in *either*
        container — is *shared*, not rewritten: that is the cross-app
        dedup (the second app embedding a library publishes only its
        manifest reference), and it keeps publishing from re-encoding
        legacy shards (migration is an explicit maintenance action).
        """
        key = store_key(disassembly)
        groups = self._groups(disassembly)
        for group, sha in groups:
            existing = self._find_shard(sha)
            if existing is not None:
                self.stats.shards_shared += 1
                try:
                    # Refresh the shared shard's mtime so gc's age gate
                    # protects it while this entry's manifest is still
                    # in flight — a shard published long ago by another
                    # app is "fresh" again the moment a new writer
                    # relies on it.
                    os.utime(existing)
                except OSError:
                    pass  # racing gc: the load path patches it back
                continue
            self._write_shard(group, sha)
        self._write_json(self._manifest_path(key), self._manifest(key, groups))

    def _manifest(
        self, key: str, groups: list[tuple[ShardGroup, str]]
    ) -> dict:
        return {
            "version": self._write_version,
            "key": key,
            "line_count": max(
                (g.end_line for g, _ in groups), default=0
            ),
            "token_count": sum(len(g.tokens) for g, _ in groups),
            "groups": [
                {
                    "shard": sha,
                    "label": group.label,
                    "start_line": group.start_line,
                    "line_count": group.line_count,
                    "tokens": len(group.tokens),
                }
                for group, sha in groups
            ],
        }

    def _read_manifest(
        self, key: str, advisory: bool = False
    ) -> Optional[dict]:
        """The validated manifest for ``key``, or None on any miss.

        Validates the group list shape (shard sha + start line per
        group) so downstream composition never indexes into garbage.
        ``advisory`` reads (probe/describe/gc classification) skip the
        ``corrupt_entries`` bump: that counter records *load-path*
        fall-back-to-miss events, and a scheduler probing one damaged
        manifest on every submission must not inflate it.
        """
        if advisory:
            status, payload = self._classify_payload(
                self._manifest_path(key), key
            )
            if status != "ok":
                return None
        else:
            payload = self._read_json(self._manifest_path(key), key)
            if payload is None:
                return None
        groups = payload.get("groups")
        valid = isinstance(groups, list) and all(
            isinstance(group, dict)
            and isinstance(group.get("shard"), str)
            and group["shard"]
            and isinstance(group.get("start_line"), int)
            for group in groups
        )
        if not valid:
            if not advisory:
                self.stats.corrupt_entries += 1
            return None
        return payload

    #: Keys every readable shard payload must carry (shape-truncated
    #: payloads read as corrupt, so one bad shard is patched instead of
    #: poisoning the whole composition).
    _SHARD_KEYS = (
        "line_count", "tokens", "vocab", "postings", "string_ids",
        "containing",
    )

    def _read_shard(self, sha: str) -> Optional[dict]:
        """A validated shard payload, or None (missing/corrupt/stale).

        Container-agnostic: the binary file is preferred when both
        exist (migration unlinks the JSON twin last, so a reader racing
        a migration still finds one complete container either way).
        """
        try:
            data = self._shard_path_bin(sha).read_bytes()
        except FileNotFoundError:
            data = None
        except OSError:
            self.stats.corrupt_entries += 1
            data = None
        if data is not None:
            try:
                return decode_shard(data, sha)
            except ShardCorrupt:
                self.stats.corrupt_entries += 1
                return None
        payload = self._read_json(self._shard_path_json(sha), sha)
        if payload is None:
            return None
        if any(key not in payload for key in self._SHARD_KEYS):
            self.stats.corrupt_entries += 1
            return None
        return payload

    def _classify_shard(self, sha: str) -> tuple[str, Optional[dict]]:
        """``(status, payload)`` for the shard holding ``sha``.

        The verifier's container-aware read: a foreign container
        version reports ``"stale"`` (a live run rebuilds it), bit rot
        reports ``"corrupt"``.
        """
        path_bin = self._shard_path_bin(sha)
        if path_bin.is_file():
            try:
                data = path_bin.read_bytes()
            except OSError:
                return "corrupt", None
            try:
                return "ok", decode_shard(data, sha)
            except ShardStale:
                return "stale", None
            except ShardCorrupt:
                return "corrupt", None
        status, payload = self._classify_payload(
            self._shard_path_json(sha), sha
        )
        if status == "ok" and any(
            key not in payload for key in self._SHARD_KEYS
        ):
            return "corrupt", None
        return status, payload

    # ------------------------------------------------------------------
    # Token-stream artifacts
    # ------------------------------------------------------------------
    def save_tokens(self, disassembly: Disassembly) -> None:
        """Persist the app's token stream as shards plus a manifest.

        Shards also carry the prefolded mini-index, so a later
        :meth:`load_index` over the same bytecode composes posting
        lists without any token-stream fold.
        """
        self._publish_entry(disassembly)

    def load_tokens(self, disassembly: Disassembly) -> Optional[list[LineToken]]:
        """The app's token stream composed from its shards, or None.

        Any missing or unreadable shard reads as a plain miss (the
        entry self-heals on the next save); a full composition is
        byte-identical to ``disassembly.tokens``.
        """
        key = store_key(disassembly)
        manifest = self._read_manifest(key)
        if manifest is None:
            self.stats.token_misses += 1
            return None
        parts: list[tuple[int, dict]] = []
        for group in manifest["groups"]:
            payload = self._read_shard(group["shard"])
            if payload is None:
                self.stats.shard_misses += 1
                self.stats.token_misses += 1
                return None
            self.stats.shard_hits += 1
            parts.append((group["start_line"], payload))
        try:
            tokens = compose_tokens(parts)
        except (KeyError, TypeError, ValueError):
            self.stats.corrupt_entries += 1
            self.stats.token_misses += 1
            return None
        self.stats.token_hits += 1
        return tokens

    # ------------------------------------------------------------------
    # Inverted-index artifacts
    # ------------------------------------------------------------------
    def save_index(
        self, disassembly: Disassembly, index: Optional[TokenIndex] = None
    ) -> None:
        """Persist the app's posting lists (sharded) plus its manifest.

        ``index`` is accepted for call-site symmetry with the build
        path but is not serialized directly: shards store per-group
        mini-indexes folded from their own tokens, which is what makes
        them position-independent and therefore shareable across apps.
        A cold save therefore re-folds each *new* group (groups whose
        shards already exist — shared libraries — are skipped); that
        one-time cost is what every later cross-app restore amortizes.
        """
        self._publish_entry(disassembly)

    def load_index(self, disassembly: Disassembly) -> Optional[TokenIndex]:
        """Compose the app's index from shards; patch missing groups.

        Three outcomes:

        * every shard present — a full warm hit; the composed index is
          byte-identical to a fresh build and reports
          ``build_seconds == 0.0`` / ``restored`` (enforced by the
          parity suite);
        * some shards present — a *partial* hit: only the missing or
          corrupt groups are re-folded from the live disassembly and
          published back (incremental re-indexing); the result reports
          ``patched_groups > 0`` and the patch time as
          ``build_seconds``;
        * no shards present — a plain miss (returns None); the caller
          builds fresh and saves, which publishes every shard.

        On a ``"binary"`` handle, a full warm hit whose groups are all
        in the binary container is served as a
        :class:`~repro.store.lazy.LazyTokenIndex` — shards are mmapped,
        not parsed, and a group decodes on the first query that touches
        it.  Mixed or legacy entries (any group still JSON) restore
        eagerly, exactly as before.
        """
        started = time.perf_counter()
        key = store_key(disassembly)
        manifest = self._read_manifest(key)
        if manifest is not None:
            if self.shard_format == "binary":
                lazy = self._lazy_from_manifest(manifest, disassembly)
                if lazy is not None:
                    self.stats.index_hits += 1
                    self.stats.lazy_restores += 1
                    self.stats.shard_hits += len(manifest["groups"])
                    return lazy
            index = self._compose_from_manifest(manifest)
            if index is not None:
                self.stats.index_hits += 1
                return index
        # Slow path: no manifest, or a shard is missing/corrupt.  The
        # disassembly is authoritative — partition it, hash each group,
        # and compose from whatever shards exist (patching the rest).
        groups = self._groups(disassembly)
        present = [
            (group, sha, self._shard_present(sha))
            for group, sha in groups
        ]
        if not any(on_disk for _, _, on_disk in present):
            self.stats.index_misses += 1
            return None
        parts: list[tuple[int, dict]] = []
        patched = 0
        for group, sha, _ in present:
            payload = self._read_shard(sha)
            if payload is None:
                # Missing or corrupt: re-fold just this group from the
                # live disassembly and publish the repaired shard.
                payload = self._write_shard(group, sha)
                self.stats.shard_misses += 1
                self.stats.shards_patched += 1
                patched += 1
            else:
                self.stats.shard_hits += 1
            parts.append((group.start_line, payload))
        try:
            index = compose_index(parts)
        except (KeyError, TypeError, ValueError):
            self.stats.corrupt_entries += 1
            self.stats.index_misses += 1
            return None
        # Self-heal: the slow path only runs when the fast path failed
        # — no manifest, a corrupt/stale one, or a damaged shard — so
        # republish the manifest unconditionally and the next probe
        # (and the next app sharing these groups) sees a complete
        # entry.
        self._write_json(
            self._manifest_path(key), self._manifest(key, groups)
        )
        index.patched_groups = patched
        if patched:
            index.build_seconds = time.perf_counter() - started
            self.stats.partial_hits += 1
        else:
            self.stats.index_hits += 1
        return index

    def _lazy_from_manifest(
        self, manifest: dict, disassembly: Disassembly
    ) -> Optional[LazyTokenIndex]:
        """A lazy index over the manifest's binary shards, or None.

        Presence is checked by ``stat`` only — no shard byte is read or
        parsed here; the first query pays for candidacy probes and any
        materialization.  Any group lacking a binary container (legacy
        JSON, or gone) disqualifies the whole entry, and the caller
        falls back to the eager/patching paths.
        """
        parts: list[tuple[int, LazyShardView]] = []
        for group in manifest["groups"]:
            sha = group["shard"]
            path = self._shard_path_bin(sha)
            try:
                if path.stat().st_size <= 0:
                    return None
            except OSError:
                return None
            parts.append((group["start_line"], LazyShardView(path, sha)))
        return LazyTokenIndex(
            parts,
            heal=self._heal_group_fn(disassembly),
            group_cache=self._group_cache,
            stats=self.stats,
        )

    def _heal_group_fn(self, disassembly: Disassembly):
        """The lazy index's repair callback.

        Re-folds group *i* from the live disassembly (manifest group
        order is :meth:`_groups` order — both derive deterministically
        from the same bytecode) and republishes its binary shard; the
        caller drops its stale mapping and proceeds with the repaired
        payload.
        """
        def heal(index: int) -> dict:
            group, sha = self._groups(disassembly)[index]
            payload = shard_payload(group, sha, FORMAT_VERSION)
            self._write_bytes(
                self._shard_path_bin(sha), encode_shard(payload, sha)
            )
            # Laziness only heals shards that existed but could not be
            # trusted, so every heal is also a corrupt-entry event.
            self.stats.corrupt_entries += 1
            self.stats.shards_patched += 1
            return payload

        return heal

    def _compose_from_manifest(self, manifest: dict) -> Optional[TokenIndex]:
        """The fast restore path: manifest-listed shards, no hashing.

        A published manifest already records every group's shard key
        and line offset, so a fully warm entry composes without
        partitioning or re-hashing the disassembly.  Returns None on
        any gap (missing/corrupt shard, compose failure) — the caller
        then falls back to the authoritative disassembly-derived path.
        """
        parts: list[tuple[int, dict]] = []
        for group in manifest["groups"]:
            payload = self._read_shard(group["shard"])
            if payload is None:
                return None
            parts.append((group["start_line"], payload))
        try:
            index = compose_index(parts)
        except (KeyError, TypeError, ValueError):
            self.stats.corrupt_entries += 1
            return None
        self.stats.shard_hits += len(parts)
        return index

    # ------------------------------------------------------------------
    # Finished per-app outcomes (batch warm starts)
    # ------------------------------------------------------------------
    def save_outcome(
        self, disassembly: Disassembly, config_fingerprint: str, outcome: dict
    ) -> None:
        """Persist one finished batch outcome (a plain JSON-able dict)."""
        key = store_key(disassembly)
        self._write_json(
            self._outcome_path(key, config_fingerprint),
            {
                "version": self._write_version,
                "key": key,
                "config": config_fingerprint,
                "outcome": outcome,
            },
        )

    def load_outcome(
        self, disassembly: Disassembly, config_fingerprint: str
    ) -> Optional[dict]:
        """The stored outcome for this bytecode + config, or None."""
        key = store_key(disassembly)
        payload = self._read_json(
            self._outcome_path(key, config_fingerprint), key
        )
        if payload is None or payload.get("config") != config_fingerprint:
            self.stats.outcome_misses += 1
            return None
        outcome = payload.get("outcome")
        if not isinstance(outcome, dict):
            self.stats.corrupt_entries += 1
            self.stats.outcome_misses += 1
            return None
        self.stats.outcome_hits += 1
        return outcome

    # ------------------------------------------------------------------
    # Probing (store-aware scheduling)
    # ------------------------------------------------------------------
    def probe(
        self, key: str, config_fingerprint: Optional[str] = None
    ) -> StoreProbe:
        """Classify the warmest artifact level present for *key*.

        Reads at most one small manifest — never a shard payload — so a
        scheduler can probe every submission cheaply before dispatch.
        A probe is advisory: the artifact may still fail validation on
        the real load, in which case the analysis falls back to a cold
        (or patched) build.
        """
        if (
            config_fingerprint is not None
            and self._outcome_path(key, config_fingerprint).is_file()
        ):
            return StoreProbe(key, "outcome")
        manifest = self._read_manifest(key, advisory=True)
        if manifest is None:
            return StoreProbe(key, "none")
        total = len(manifest["groups"])
        found = sum(
            1
            for group in manifest["groups"]
            if self._shard_present(group["shard"])
        )
        if total and found == total:
            return StoreProbe(key, "index", total, found)
        if found:
            return StoreProbe(key, "partial", total, found)
        return StoreProbe(key, "none", total, found)

    def save_spec_key(self, spec_fingerprint: str, key: str) -> None:
        """Record which content key a deterministic app spec produced.

        The map lets schedulers resolve a submission to its disassembly
        sha *without generating the app*: a spec seen by any earlier
        store-attached run resolves immediately; an unseen spec simply
        misses and is treated as cold.  An entry pointing at a different
        key (a generator change survived by the store) is overwritten,
        so the map self-heals on the next analysis.
        """
        if self.load_spec_key(spec_fingerprint) == key:
            return  # already current
        guard = _SPECMAP_GUARDS.get(os.path.abspath(str(self.root)))
        if guard is not None and not guard():
            self.stats.specmap_writes_skipped += 1
            return
        self._write_json(
            self._spec_path(spec_fingerprint),
            {
                "version": self._write_version,
                "key": spec_fingerprint,
                "target": key,
            },
        )

    def load_spec_key(self, spec_fingerprint: str) -> Optional[str]:
        """The content key recorded for a spec, or None when unseen."""
        payload = self._read_json(self._spec_path(spec_fingerprint),
                                  spec_fingerprint)
        if payload is None:
            return None
        target = payload.get("target")
        if not isinstance(target, str) or not target:
            self.stats.corrupt_entries += 1
            return None
        return target

    # ------------------------------------------------------------------
    # Cluster coordination (node manifests + advisory leases)
    # ------------------------------------------------------------------
    # The store doubles as the coordination substrate for multi-node
    # ``backdroid serve``: nodes gossip liveness/shard availability as
    # small JSON manifests under ``cluster/nodes/`` and serialize
    # specmap ownership through an advisory lease under
    # ``cluster/leases/``.  Both reuse the atomic-rename publish and
    # version/key payload validation of every other artifact, so a torn
    # or stale file degrades to "absent" rather than corrupting
    # routing.

    def _node_path(self, node_id: str) -> Path:
        return self.root / "cluster" / "nodes" / f"{node_id}.json"

    def _lease_path(self, name: str) -> Path:
        return self.root / "cluster" / "leases" / f"{name}.json"

    def save_node_manifest(self, node_id: str, payload: dict) -> None:
        """Publish one node's heartbeat/gossip manifest (atomic)."""
        body = dict(payload)
        body["version"] = self._write_version
        body["key"] = node_id
        body["node_id"] = node_id
        body["updated_at"] = time.time()
        self._write_json(self._node_path(node_id), body)

    def load_node_manifest(self, node_id: str) -> Optional[dict]:
        """One node's manifest, or None when absent/corrupt."""
        return self._read_json(self._node_path(node_id), node_id)

    def load_node_manifests(self) -> list[dict]:
        """Every readable node manifest, sorted by node id."""
        nodes_dir = self.root / "cluster" / "nodes"
        if not nodes_dir.is_dir():
            return []
        manifests = []
        for path in sorted(nodes_dir.iterdir()):
            if path.suffix != ".json":
                continue
            payload = self._read_json(path, path.stem)
            if payload is not None:
                manifests.append(payload)
        return manifests

    def remove_node_manifest(self, node_id: str) -> None:
        """Withdraw a node's manifest (shutdown); missing is fine."""
        try:
            self._node_path(node_id).unlink()
        except OSError:
            pass

    def read_lease(self, name: str) -> Optional[dict]:
        """The current lease payload, or None when never acquired."""
        return self._read_json(self._lease_path(name), name)

    def acquire_lease(
        self, name: str, owner: str, ttl_seconds: float
    ) -> Optional[dict]:
        """Acquire or renew the advisory lease ``name`` for ``owner``.

        Returns the written lease payload on success, None when another
        owner holds an unexpired lease.  Renewal by the current owner
        keeps its fencing token; reclaiming an expired (or absent)
        lease bumps it.  Reclaim races between peers are serialized by
        an ``O_EXCL`` claim file per candidate token: exactly one
        contender creates ``<name>.<token>.claim`` and publishes the
        lease, the loser backs off and re-reads.  The lease is
        *advisory* — it gates cooperative writers (the specmap guard),
        it does not fence arbitrary I/O.
        """
        now = time.time()
        current = self.read_lease(name)
        if current is not None:
            expires = current.get("expires_at")
            unexpired = isinstance(expires, (int, float)) and expires > now
            if unexpired and current.get("owner") != owner:
                return None
            if unexpired and current.get("owner") == owner:
                payload = {
                    "version": self._write_version,
                    "key": name,
                    "owner": owner,
                    "token": current.get("token"),
                    "acquired_at": current.get("acquired_at", now),
                    "expires_at": now + ttl_seconds,
                }
                self._write_json(self._lease_path(name), payload)
                return payload
        prior_token = (current or {}).get("token")
        if not isinstance(prior_token, int):
            prior_token = 0
        next_token = prior_token + 1
        lease_dir = self._lease_path(name).parent
        lease_dir.mkdir(parents=True, exist_ok=True)
        claim = lease_dir / f"{name}.{next_token}.claim"
        try:
            fd = os.open(
                claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return None  # a peer is reclaiming this generation
        with os.fdopen(fd, "w") as handle:
            handle.write(owner)
        payload = {
            "version": self._write_version,
            "key": name,
            "owner": owner,
            "token": next_token,
            "acquired_at": now,
            "expires_at": now + ttl_seconds,
        }
        self._write_json(self._lease_path(name), payload)
        # Sweep claim markers from settled generations (including our
        # own once the lease is published).
        for stale in lease_dir.glob(f"{name}.*.claim"):
            try:
                tok = int(stale.name.split(".")[-2])
            except (ValueError, IndexError):
                continue
            if tok <= next_token:
                try:
                    stale.unlink()
                except OSError:
                    pass
        return payload

    def release_lease(self, name: str, owner: str) -> bool:
        """Expire the lease if ``owner`` holds it.  True when released.

        The payload is rewritten with ``expires_at`` in the past rather
        than unlinked: the fencing token's history must survive a
        voluntary release, so the next owner still gets a strictly
        larger generation.
        """
        current = self.read_lease(name)
        if current is None or current.get("owner") != owner:
            return False
        released = dict(current)
        released["expires_at"] = 0.0
        self._write_json(self._lease_path(name), released)
        return True

    # ------------------------------------------------------------------
    # Verification (the ``backdroid store verify`` action)
    # ------------------------------------------------------------------
    def verify(self) -> list[VerifyEntry]:
        """Replay shard-level parity against every stored entry.

        For each manifest, every referenced shard is checked three
        ways:

        1. **content address** — the shard's sha256 is recomputed from
           its stored tokens and must match its file name (rules out a
           shard silently swapped for another group's content);
        2. **mini-index parity** — the stored vocabulary/posting
           lists/string ids must equal a fresh fold of the shard's own
           token stream, exactly the equality the backend-parity suite
           enforces for live restores;
        3. **presence/readability** — a referenced shard that is gone
           or unreadable is reported (``missing-shard`` / ``corrupt``).

        Any divergence means on-disk corruption that the per-payload
        validation cannot catch (valid JSON, wrong lists).
        """
        results: list[VerifyEntry] = []
        for entry in self.entries():
            key = entry.name
            if not self._manifest_path(key).is_file():
                results.append(VerifyEntry(key, "no-index"))
                continue
            status, manifest = self._classify_payload(
                self._manifest_path(key), key
            )
            if status == "missing":
                # Present at the is_file() check, gone now: a concurrent
                # gc is collecting the entry — a skip, not corruption.
                results.append(VerifyEntry(key, "no-index"))
                continue
            if status == "stale":
                results.append(
                    VerifyEntry(key, "stale",
                                "older format version; a live run "
                                "rebuilds this entry")
                )
                continue
            if status != "ok" or not isinstance(manifest.get("groups"), list):
                results.append(
                    VerifyEntry(key, "corrupt", "manifest unreadable")
                )
                continue
            results.append(self._verify_entry(key, manifest))
        return results

    def _verify_entry(self, key: str, manifest: dict) -> VerifyEntry:
        """One app entry's shard-by-shard verdict.

        Beyond per-shard checks, manifest group offsets must *tile*:
        each group's ``start_line`` must equal the previous group's end
        (start + content-addressed ``line_count``), since composition
        rebases postings onto those offsets.  A corrupted offset would
        otherwise compose an index whose hits point at the wrong lines
        while every shard still verifies clean.  (A uniform shift of
        *all* offsets is the one corruption shard content cannot
        witness.)
        """
        prev_end: Optional[int] = None
        for group in manifest["groups"]:
            sha = group.get("shard")
            if not isinstance(sha, str) or not sha:
                return VerifyEntry(key, "corrupt", "manifest group malformed")
            status, payload = self._classify_shard(sha)
            if status == "missing":
                return VerifyEntry(
                    key, "missing-shard",
                    f"shard {sha[:12]} referenced by the manifest is gone "
                    "(a live run patches it)",
                )
            if status == "stale":
                return VerifyEntry(
                    key, "stale",
                    f"shard {sha[:12]} has an older format version; a "
                    "live run patches this entry",
                )
            if status != "ok":
                return VerifyEntry(
                    key, "corrupt", f"shard {sha[:12]} payload unreadable"
                )
            try:
                tokens = tokens_from_shard(payload)
                line_count = int(payload["line_count"])
                vocab = [str(t) for t in payload["vocab"]]
                postings = [
                    [int(n) for n in posting] for posting in payload["postings"]
                ]
                string_ids = [int(t) for t in payload["string_ids"]]
                containing = {
                    str(sub): [int(t) for t in tids]
                    for sub, tids in payload["containing"].items()
                }
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                return VerifyEntry(
                    key, "corrupt", f"shard {sha[:12]} payload: {exc}"
                )
            start_line = group["start_line"]
            if start_line < 0 or (
                prev_end is not None and start_line != prev_end
            ):
                return VerifyEntry(
                    key, "mismatch",
                    f"manifest offsets do not tile: group at shard "
                    f"{sha[:12]} starts at line {start_line}, expected "
                    f"{max(prev_end or 0, 0)}",
                )
            prev_end = start_line + line_count
            expected_sha = shard_key(ShardGroup("", 0, line_count, tokens))
            if expected_sha != sha:
                return VerifyEntry(
                    key, "mismatch",
                    f"shard {sha[:12]} content no longer matches its "
                    "content address",
                )
            fresh = fold_group(tokens)
            mismatched = [
                name
                for name, stored_side, fresh_side in (
                    ("vocab", vocab, fresh[0]),
                    ("postings", postings, fresh[1]),
                    ("string_ids", string_ids, fresh[2]),
                    ("containing", containing, fresh[3]),
                )
                if stored_side != fresh_side
            ]
            if mismatched:
                return VerifyEntry(
                    key, "mismatch",
                    f"shard {sha[:12]} diverges from a fresh fold on: "
                    + ", ".join(mismatched),
                )
        return VerifyEntry(
            key, "ok", f"{len(manifest['groups'])} shard(s) verified"
        )

    # ------------------------------------------------------------------
    # Maintenance (the ``backdroid store`` subcommand)
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """Every entry directory currently published in the store."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.is_dir():
                    yield entry

    def _shard_files(self) -> Iterator[Path]:
        """Every published shard file."""
        shards = self.root / "shards"
        if not shards.is_dir():
            return
        for prefix in sorted(shards.iterdir()):
            if not prefix.is_dir():
                continue
            for shard in sorted(prefix.iterdir()):
                if shard.is_file() and shard.suffix in (".bin", ".json"):
                    yield shard

    def _spec_files(self) -> Iterator[Path]:
        """Every published specmap file."""
        specmap = self.root / "specmap"
        if not specmap.is_dir():
            return
        for shard in sorted(specmap.iterdir()):
            if not shard.is_dir():
                continue
            for mapping in sorted(shard.iterdir()):
                if mapping.is_file() and mapping.suffix == ".json":
                    yield mapping

    def _referenced_shards(self) -> dict[str, int]:
        """Shard sha -> reference count across all valid manifests."""
        refs: dict[str, int] = {}
        for entry in self.entries():
            manifest = self._read_manifest(entry.name, advisory=True)
            if manifest is None:
                continue
            for group in manifest["groups"]:
                refs[group["shard"]] = refs.get(group["shard"], 0) + 1
        return refs

    def describe(self) -> StoreInventory:
        """Walk the store and return its :class:`StoreInventory`."""
        inventory = StoreInventory(root=str(self.root))
        shard_sizes: dict[str, int] = {}
        for shard in self._shard_files():
            try:
                size = shard.stat().st_size
            except OSError:
                continue  # swept by a concurrent gc mid-walk
            shard_sizes[shard.stem] = size
            inventory.shards += 1
            inventory.shard_bytes += size
            inventory.total_bytes += size
            if shard.suffix == ".json":
                inventory.legacy_json_shards += 1
            inventory.files_by_kind["shard"] = (
                inventory.files_by_kind.get("shard", 0) + 1
            )
        for entry in self.entries():
            inventory.entries += 1
            try:
                for artifact in entry.iterdir():
                    if not artifact.is_file() or artifact.suffix == ".tmp":
                        continue
                    kind = artifact.name.split("-", 1)[0].split(".", 1)[0]
                    inventory.files_by_kind[kind] = (
                        inventory.files_by_kind.get(kind, 0) + 1
                    )
                    inventory.total_bytes += artifact.stat().st_size
            except OSError:
                # A concurrent gc swept the entry mid-walk; report what
                # was still there.
                continue
            manifest = self._read_manifest(entry.name, advisory=True)
            if manifest is None:
                continue
            for group in manifest["groups"]:
                inventory.shard_refs += 1
                inventory.logical_shard_bytes += shard_sizes.get(
                    group["shard"], 0
                )
        for mapping in self._spec_files():
            try:
                size = mapping.stat().st_size
            except OSError:
                continue  # swept by a concurrent gc mid-walk
            inventory.files_by_kind["specmap"] = (
                inventory.files_by_kind.get("specmap", 0) + 1
            )
            inventory.total_bytes += size
        return inventory

    def gc(self, max_age_seconds: float = 0.0) -> GcResult:
        """Sweep aged app entries, then any shards they alone held.

        App entries (manifest + outcomes) whose newest artifact is
        older than the cutoff are removed, exactly as before sharding.
        Shards are **refcounted by the surviving manifests**: after the
        entry sweep, a shard still referenced by any live manifest is
        kept regardless of age; an unreferenced shard older than the
        cutoff is reclaimed.  The age gate on shards keeps a concurrent
        writer's freshly published shards safe while its manifest is
        still in flight.

        ``max_age_seconds == 0`` clears the whole store — entries,
        shards and specmap.  Specmap files are swept by the same age
        rule (a dangling mapping is harmless — it only costs a cold
        probe — but a long-lived store must not leak one file per spec
        forever).

        On a ``"binary"`` handle, surviving *referenced* legacy JSON
        shards are additionally migrated to the binary container in
        place (``shards_migrated``), so routine collection steadily
        converts a v2 store without a dedicated maintenance pass.
        """
        cutoff = time.time() - max_age_seconds
        result = GcResult()
        for entry in list(self.entries()):
            try:
                artifacts = [p for p in entry.iterdir() if p.is_file()]
                newest = max(
                    (p.stat().st_mtime for p in artifacts), default=0.0
                )
                if newest > cutoff:
                    continue
                result.bytes_reclaimed += sum(
                    p.stat().st_size for p in artifacts
                )
                shutil.rmtree(entry)
                result.entries_removed += 1
            except OSError:
                # A concurrent writer re-published the entry mid-sweep;
                # leave it for the next collection.
                continue
        referenced = self._referenced_shards()
        for shard in list(self._shard_files()):
            if shard.stem in referenced:
                continue
            try:
                stat = shard.stat()
                if stat.st_mtime > cutoff:
                    continue
                size = stat.st_size
                shard.unlink()
                result.shards_removed += 1
                result.bytes_reclaimed += size
            except OSError:
                continue
        for mapping in list(self._spec_files()):
            try:
                stat = mapping.stat()
                if stat.st_mtime > cutoff:
                    continue
                size = stat.st_size
                mapping.unlink()
                result.bytes_reclaimed += size
            except OSError:
                continue
        # Cluster coordination files (node manifests, leases, claim
        # markers) age out by the same rule: a heartbeating node
        # refreshes its files far more often than any sane cutoff, so
        # only debris from departed nodes is swept.
        cluster_dir = self.root / "cluster"
        if cluster_dir.is_dir():
            for path in cluster_dir.rglob("*"):
                if not path.is_file():
                    continue
                try:
                    stat = path.stat()
                    if stat.st_mtime > cutoff:
                        continue
                    size = stat.st_size
                    path.unlink()
                    result.bytes_reclaimed += size
                except OSError:
                    continue
        if self.shard_format == "binary":
            for shard in list(self._shard_files()):
                if shard.suffix != ".json" or shard.stem not in referenced:
                    continue
                if self._migrate_shard(shard) is not None:
                    result.shards_migrated += 1
        return result

    def _migrate_shard(self, path: Path) -> Optional[int]:
        """Convert one legacy JSON shard to the binary container.

        The content address is container-independent, so the binary
        twin is published at the same sha (no manifest rewrite) and the
        JSON file is unlinked last — a reader racing the migration
        always finds one complete container.  Returns the bytes
        reclaimed (JSON size minus binary size; the binary container is
        denser, so normally positive), or None when the legacy payload
        fails validation and is left in place for the live patch path.
        """
        sha = path.stem
        bin_path = self._shard_path_bin(sha)
        try:
            json_size = path.stat().st_size
        except OSError:
            return None  # swept by a concurrent gc mid-pass
        if not bin_path.is_file():
            status, payload = self._classify_payload(path, sha)
            if status != "ok" or any(
                key not in payload for key in self._SHARD_KEYS
            ):
                return None
            try:
                data = encode_shard(payload, sha)
            except (KeyError, TypeError, ValueError):
                # CRC-clean JSON whose structure lies (a token text
                # missing from its own vocabulary): not convertible.
                return None
            self._write_bytes(bin_path, data)
        try:
            bin_size = bin_path.stat().st_size
        except OSError:
            bin_size = 0
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.shards_migrated += 1
        return json_size - bin_size

    def migrate(self) -> MigrateResult:
        """Convert every legacy JSON shard to the binary container.

        In place and idempotent (``backdroid store migrate``): shard
        content addresses name logical content, not containers, so
        manifests keep referencing the same shas and a partially
        migrated (mixed) store stays fully readable throughout.
        Legacy shards that fail validation are counted and left on
        disk — a live run holding the disassembly patches them.
        """
        result = MigrateResult()
        for shard in list(self._shard_files()):
            if shard.suffix != ".json":
                continue
            reclaimed = self._migrate_shard(shard)
            if reclaimed is None:
                result.shards_failed += 1
            else:
                result.shards_migrated += 1
                result.bytes_reclaimed += reclaimed
        return result
