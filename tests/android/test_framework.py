"""Unit tests for the framework model."""

from repro.android.framework import (
    ASYNC_EDGE_MAP,
    CALLBACK_REGISTRATIONS,
    ICC_CALL_APIS,
    LIFECYCLE_HANDLERS,
    LIFECYCLE_PREDECESSORS,
    SINK_CATALOGUE,
    component_kind_of,
    framework_pool,
    is_framework_class,
    is_lifecycle_handler,
    sinks_for_rules,
)
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature


class TestFrameworkPool:
    def test_singleton_identity(self):
        assert framework_pool() is framework_pool()

    def test_all_classes_flagged_framework(self):
        assert all(c.is_framework for c in framework_pool())

    def test_runnable_declares_run(self):
        pool = framework_pool()
        runnable = pool.get("java.lang.Runnable")
        assert runnable.is_interface
        assert runnable.declares_sub_signature("void run()")

    def test_executor_declares_execute(self):
        pool = framework_pool()
        executor = pool.get("java.util.concurrent.Executor")
        assert executor.declares_sub_signature("void execute(java.lang.Runnable)")

    def test_activity_extends_context(self):
        pool = framework_pool()
        chain = pool.superclass_chain("android.app.Activity")
        assert "android.content.Context" in chain

    def test_x509_verifier_extends_hostname_verifier(self):
        pool = framework_pool()
        assert pool.is_subtype_of(
            "org.apache.http.conn.ssl.AllowAllHostnameVerifier",
            "javax.net.ssl.HostnameVerifier",
        )

    def test_allow_all_verifier_field_exists(self):
        pool = framework_pool()
        factory = pool.get("org.apache.http.conn.ssl.SSLSocketFactory")
        field = factory.find_field("ALLOW_ALL_HOSTNAME_VERIFIER")
        assert field is not None and field.is_static


class TestFrameworkPredicates:
    def test_is_framework_class(self):
        assert is_framework_class("android.app.Activity")
        assert is_framework_class("java.lang.Thread")
        assert is_framework_class("javax.crypto.Cipher")
        assert not is_framework_class("com.example.Main")
        assert not is_framework_class("com.facebook.ads.Loader")

    def test_component_kind_of_app_subclass(self):
        app = AppBuilder()
        app.new_class("com.example.Main", superclass="android.app.Activity")
        pool = app.build()
        pool.merge(framework_pool())
        assert component_kind_of(pool, "com.example.Main") == "android.app.Activity"
        assert component_kind_of(pool, "java.lang.String") is None

    def test_is_lifecycle_handler(self):
        app = AppBuilder()
        main = app.new_class("com.example.Main", superclass="android.app.Activity")
        m = main.method("onCreate", params=["android.os.Bundle"])
        m.return_void()
        pool = app.build()
        pool.merge(framework_pool())
        sig = MethodSignature(
            "com.example.Main", "onCreate", ("android.os.Bundle",), "void"
        )
        assert is_lifecycle_handler(pool, sig)
        other = MethodSignature("com.example.Main", "helper", (), "void")
        assert not is_lifecycle_handler(pool, other)


class TestDomainKnowledge:
    def test_lifecycle_tables_consistent(self):
        for base, predecessors in LIFECYCLE_PREDECESSORS.items():
            handlers = set(LIFECYCLE_HANDLERS[base])
            for handler, preds in predecessors.items():
                assert handler in handlers
                assert set(preds) <= handlers

    def test_activity_oncreate_is_root(self):
        preds = LIFECYCLE_PREDECESSORS["android.app.Activity"]
        assert "onCreate" not in preds  # nothing precedes onCreate

    def test_async_edge_map_has_paper_examples(self):
        assert ASYNC_EDGE_MAP[("java.lang.Thread", "start")] == "run"
        assert ASYNC_EDGE_MAP[("android.os.AsyncTask", "execute")] == "doInBackground"
        assert ASYNC_EDGE_MAP[("java.util.concurrent.Executor", "execute")] == "run"

    def test_callback_registrations(self):
        iface, method = CALLBACK_REGISTRATIONS["setOnClickListener"]
        assert iface == "android.view.View$OnClickListener"
        assert method == "onClick"

    def test_icc_apis_cover_all_component_kinds(self):
        targets = set(ICC_CALL_APIS.values())
        assert "android.app.Activity" in targets
        assert "android.app.Service" in targets
        assert "android.content.BroadcastReceiver" in targets


class TestSinkCatalogue:
    def test_paper_sinks_present(self):
        keys = {s.signature.to_dex() for s in SINK_CATALOGUE}
        assert "Ljavax/crypto/Cipher;.getInstance:(Ljava/lang/String;)Ljavax/crypto/Cipher;" in keys
        assert (
            "Lorg/apache/http/conn/ssl/SSLSocketFactory;.setHostnameVerifier:"
            "(Lorg/apache/http/conn/ssl/X509HostnameVerifier;)V"
        ) in keys

    def test_sinks_for_rules_filters(self):
        crypto = sinks_for_rules(("crypto-ecb",))
        assert all(s.rule == "crypto-ecb" for s in crypto)
        assert len(crypto) == 2

    def test_tracked_params_valid(self):
        for sink in SINK_CATALOGUE:
            for index in sink.tracked_params:
                assert 0 <= index < len(sink.signature.param_types)

    def test_sink_methods_resolve_in_framework_pool(self):
        pool = framework_pool()
        for sink in SINK_CATALOGUE:
            assert pool.resolve_method(sink.signature) is not None, sink.key
