"""ReportEnvelope: exact round trips, versioning, schema stability."""

import json
import os
from pathlib import Path

import pytest

from repro.api import (
    SCHEMA_VERSION,
    AnalysisRequest,
    AnalysisSession,
    ReportEnvelope,
)
from repro.workload.paperapps import build_lg_tv_plus

GOLDEN_PATH = Path(__file__).parent / "golden_envelope.json"

#: The deterministic run the golden fixture pins: the LG TV worked
#: example under every built-in rule family, linear backend.
GOLDEN_RULES = ("crypto-ecb", "ssl-verifier", "open-port", "sms-send")


def _golden_envelope() -> ReportEnvelope:
    apk = build_lg_tv_plus()
    session = AnalysisSession(apk)
    return session.run(AnalysisRequest(rules=GOLDEN_RULES))


def _normalized(payload: dict) -> dict:
    """Zero the wall-clock fields; everything else is deterministic."""
    payload = json.loads(json.dumps(payload))  # deep copy via JSON
    report = payload["report"]
    report["analysis_seconds"] = 0.0
    report["backend_stats"]["index_build_seconds"] = 0.0
    for record in report["records"]:
        record["duration_seconds"] = 0.0
    return payload


class TestRoundTrip:
    def test_exact_round_trip_through_json(self, bench_apk):
        session = AnalysisSession(bench_apk, default_backend="indexed")
        envelope = session.run(AnalysisRequest())

        wire = json.dumps(envelope.as_dict(), sort_keys=True)
        restored = ReportEnvelope.from_dict(json.loads(wire))

        assert restored.schema_version == SCHEMA_VERSION
        assert restored.request == envelope.request
        assert restored.report == envelope.report  # exact, field by field
        assert restored.as_dict() == envelope.as_dict()

    def test_round_trip_preserves_findings_and_facts(self, lg_tv_plus):
        envelope = AnalysisSession(lg_tv_plus).run(
            AnalysisRequest(rules=("open-port",))
        )
        restored = ReportEnvelope.from_dict(envelope.as_dict())
        assert restored.report.findings == envelope.report.findings
        assert [r.facts_repr for r in restored.report.records] == [
            r.facts_repr for r in envelope.report.records
        ]
        # facts keys survive as ints, not JSON strings.
        for record in restored.report.records:
            assert all(isinstance(k, int) for k in record.facts_repr)

    def test_round_trip_with_explicit_targets(self, lg_tv_plus):
        from repro.android.framework import sinks_for_rules

        request = AnalysisRequest(targets=sinks_for_rules(("open-port",)))
        envelope = AnalysisSession(lg_tv_plus).run(request)
        restored = ReportEnvelope.from_dict(
            json.loads(json.dumps(envelope.as_dict()))
        )
        assert restored.request == request


class TestVersioning:
    def test_rejects_wrong_schema_version(self, lg_tv_plus):
        payload = AnalysisSession(lg_tv_plus).run(
            AnalysisRequest(rules=("open-port",))
        ).as_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            ReportEnvelope.from_dict(payload)

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ReportEnvelope.from_dict({"kind": "something-else"})

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            ReportEnvelope.from_dict("not a dict")

    def test_outcome_payloads_carry_the_shared_version(self):
        from repro.core.batch import AppOutcome, outcome_payload

        payload = outcome_payload(AppOutcome(package="com.x"))
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_stale_outcome_payload_is_rejected(self):
        from repro.core.batch import (
            AppOutcome,
            _outcome_from_payload,
            outcome_payload,
        )

        payload = outcome_payload(AppOutcome(package="com.x"))
        assert _outcome_from_payload(payload).package == "com.x"
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            _outcome_from_payload(payload)
        del payload["schema_version"]
        with pytest.raises(ValueError):
            _outcome_from_payload(payload)


class TestSchemaStability:
    """The CI gate: shape changes must bump SCHEMA_VERSION.

    Regenerate the fixture *together with* a version bump::

        REGENERATE_GOLDEN=1 PYTHONPATH=src \\
            python -m pytest tests/api/test_envelope.py -q
    """

    def test_golden_fixture_matches_current_serialization(self):
        current = _normalized(_golden_envelope().as_dict())
        if os.environ.get("REGENERATE_GOLDEN") == "1":
            GOLDEN_PATH.write_text(
                json.dumps(current, indent=2, sort_keys=True) + "\n"
            )
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden["schema_version"] == SCHEMA_VERSION, (
            "golden fixture was generated under a different schema version"
        )
        assert current == golden, (
            "the serialized envelope shape changed without a SCHEMA_VERSION "
            "bump — bump repro.api.envelope.SCHEMA_VERSION and regenerate "
            "the fixture (REGENERATE_GOLDEN=1)"
        )
