"""The raw text-search engine over the dexdump plaintext.

This is the "bytecode search space" half of Fig. 3: given a search
signature (already translated to dexdump format), find every line of the
disassembled plaintext that mentions it, and map each hit back to the
containing method so the program-analysis space can take over.

All searches run through a :class:`~repro.search.caching.SearchCommandCache`
— repeated commands (common when similar paths are explored across
different sinks) are served from cache, reproducing the Sec. IV-F
"search caching" enhancement.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass
from typing import Optional

from repro.dex.disassembler import Disassembly
from repro.dex.types import FieldSignature, MethodSignature, java_to_dex_type
from repro.search.caching import SearchCommandCache


@dataclass(frozen=True)
class SearchHit:
    """One text hit: absolute line plus its program-space location."""

    line_no: int
    line: str
    #: The method whose disassembly block contains the hit (None when the
    #: hit is outside any method body, e.g. in a class header).
    method: Optional[MethodSignature]
    #: The IR statement index the hit line renders, if known.
    stmt_index: Optional[int]


class BytecodeSearcher:
    """Searches one app's disassembled plaintext, with command caching."""

    def __init__(self, disassembly: Disassembly, cache: Optional[SearchCommandCache] = None):
        self.disassembly = disassembly
        self.cache = cache if cache is not None else SearchCommandCache()
        # One joined text + cumulative line offsets: literal searches run
        # as fast substring scans instead of per-line regex loops.
        self._text = "\n".join(disassembly.lines)
        self._line_offsets = [0]
        for line in disassembly.lines:
            self._line_offsets.append(self._line_offsets[-1] + len(line) + 1)

    # ------------------------------------------------------------------
    # Core primitives
    # ------------------------------------------------------------------
    def _line_of_offset(self, offset: int) -> int:
        return bisect.bisect_right(self._line_offsets, offset) - 1

    def _hit(self, line_no: int) -> SearchHit:
        block = self.disassembly.block_at_line(line_no)
        stmt_index = block.stmt_index_for_line(line_no) if block else None
        return SearchHit(
            line_no=line_no,
            line=self.disassembly.lines[line_no],
            method=block.signature if block else None,
            stmt_index=stmt_index,
        )

    def search_literal(self, needle: str, kind: str = "raw") -> list[SearchHit]:
        """All hits of a literal substring (cached by command)."""

        def run() -> list[SearchHit]:
            hits: list[SearchHit] = []
            start = 0
            while True:
                offset = self._text.find(needle, start)
                if offset < 0:
                    break
                line_no = self._line_of_offset(offset)
                hits.append(self._hit(line_no))
                # Continue after the end of this line: one hit per line.
                start = self._line_offsets[line_no + 1]
            return hits

        return self.cache.get_or_run(kind, needle, run)

    def search_pattern(self, pattern: str, kind: str = "raw-regex") -> list[SearchHit]:
        """All hits of a regular expression (cached by command)."""

        def run() -> list[SearchHit]:
            compiled = re.compile(pattern)
            hits: list[SearchHit] = []
            last_line = -1
            for match in compiled.finditer(self._text):
                line_no = self._line_of_offset(match.start())
                if line_no != last_line:
                    hits.append(self._hit(line_no))
                    last_line = line_no
            return hits

        return self.cache.get_or_run(kind, pattern, run)

    # ------------------------------------------------------------------
    # Signature-level searches
    # ------------------------------------------------------------------
    def find_invocations(self, callee: MethodSignature) -> list[SearchHit]:
        """Invocation sites of a method signature (Fig. 3, step 1).

        The needle is the full dexdump signature; only ``invoke-*`` lines
        qualify (the same signature also appears in its own method
        header, which must not count as a call site).
        """
        needle = callee.to_dex()
        hits = self.search_literal(needle, kind="caller-method")
        return [h for h in hits if "invoke-" in h.line]

    def find_field_accesses(
        self, fieldsig: FieldSignature, writes_only: bool = False
    ) -> list[SearchHit]:
        """Field access sites (the slicer's static-field search, Sec. V-A)."""
        needle = fieldsig.to_dex()
        hits = self.search_literal(needle, kind="field")
        accesses = [
            h
            for h in hits
            if any(op in h.line for op in ("iget", "iput", "sget", "sput"))
        ]
        if writes_only:
            accesses = [h for h in accesses if "iput" in h.line or "sput" in h.line]
        return accesses

    def find_const_class(self, class_name: str) -> list[SearchHit]:
        """``const-class`` mentions of a class (explicit-ICC parameters)."""
        needle = f"const-class"
        descriptor = java_to_dex_type(class_name)
        hits = self.search_literal(descriptor, kind="invoked-class")
        return [h for h in hits if needle in h.line]

    def find_const_string(self, value: str) -> list[SearchHit]:
        """``const-string`` mentions of a literal (implicit-ICC actions)."""
        needle = f'const-string'
        hits = self.search_literal(f'"{value}"', kind="raw")
        return [h for h in hits if needle in h.line]

    def find_invocations_by_name(
        self, method_name: str, param_blob: Optional[str] = None
    ) -> list[SearchHit]:
        """Invocations matched by method name regardless of receiver class.

        Used by the two-time ICC search, where the receiver of e.g.
        ``startService`` can be any ``Context`` subclass.  ``param_blob``
        optionally pins the dex parameter descriptor blob.
        """
        params = re.escape(param_blob) if param_blob is not None else "[^)]*"
        pattern = rf"invoke-[a-z]+ \{{[^}}]*\}}, L[^;]+;\.{re.escape(method_name)}:\({params}\)"
        return self.search_pattern(pattern, kind="caller-method")

    def classes_mentioning(self, class_name: str) -> set[str]:
        """Names of classes whose bytecode text mentions *class_name*.

        One recursive step of the static-initializer search (Sec. IV-C):
        "BackDroid first launches a search to find out a set of classes
        that invoke the SI class."
        """
        descriptor = java_to_dex_type(class_name)
        hits = self.search_literal(descriptor, kind="invoked-class")
        users: set[str] = set()
        for hit in hits:
            if hit.method is None:
                continue
            if hit.method.class_name == class_name:
                continue
            # Class-header lines (superclass/interface declarations) have
            # no method; instruction-level mentions land here.
            users.add(hit.method.class_name)
        return users

    def subclass_header_mentions(self, class_name: str) -> set[str]:
        """Classes whose *header* (superclass/interfaces) names the class."""
        descriptor = f"'{java_to_dex_type(class_name)}'"
        hits = self.search_literal(descriptor, kind="invoked-class")
        users: set[str] = set()
        current_class: Optional[str] = None
        for hit in hits:
            if "Superclass" in hit.line or ": '" in hit.line:
                # Walk back to the nearest class-descriptor line.
                for line_no in range(hit.line_no, -1, -1):
                    line = self.disassembly.lines[line_no]
                    if "Class descriptor" in line:
                        match = re.search(r"'L([^;]+);'", line)
                        if match:
                            current_class = match.group(1).replace("/", ".")
                        break
                if current_class and current_class != class_name:
                    users.add(current_class)
        return users
