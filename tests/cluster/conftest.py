"""Shared cluster fixtures: real ``backdroid serve`` subprocesses.

The heavy lifting lives in :class:`repro.service.ClusterHarness` (also
used by ``scripts/ci_cluster_smoke.py`` and
``benchmarks/bench_cluster_scaling.py``); the fixture's job is
guaranteed teardown — every harness a test starts is stopped (with
SIGKILL escalation) even when the test body raises.
"""

import pytest

from repro.service import ClusterHarness


@pytest.fixture
def cluster_factory(tmp_path):
    """Start N-node clusters over a shared store; always torn down.

    Usage::

        harness = cluster_factory(nodes=3, lease_ttl=2.0)
    """
    harnesses = []

    def factory(nodes=2, store_dir=None, **kwargs):
        harness = ClusterHarness(
            store_dir if store_dir is not None else tmp_path / "store",
            nodes=nodes,
            **kwargs,
        )
        harnesses.append(harness)
        harness.start()
        return harness

    yield factory
    for harness in harnesses:
        harness.stop()
