"""In-process units: leases, node gossip, the specmap guard, routing."""

import json
import time

import pytest

from repro.service.cluster import (
    ClusterRouter,
    NodeDirectory,
    SpecmapLease,
    install_specmap_guard,
)
from repro.store import ArtifactStore, set_specmap_guard


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestLease:
    def test_acquire_then_renew_keeps_token(self, store):
        lease = SpecmapLease(store, "n1", ttl_seconds=5.0)
        assert lease.try_acquire()
        assert lease.token == 1
        assert lease.holds()
        assert lease.try_acquire()  # renew
        assert lease.token == 1
        assert lease.acquisitions == 2

    def test_unexpired_lease_excludes_other_owners(self, store):
        assert SpecmapLease(store, "n1", ttl_seconds=5.0).try_acquire()
        other = SpecmapLease(store, "n2", ttl_seconds=5.0)
        assert not other.try_acquire()
        assert not other.holds()
        assert other.info()["owner"] == "n1"

    def test_expired_lease_reclaim_bumps_fencing_token(self, store):
        first = SpecmapLease(store, "n1", ttl_seconds=0.1)
        assert first.try_acquire()
        time.sleep(0.15)
        assert not first.holds()
        second = SpecmapLease(store, "n2", ttl_seconds=5.0)
        assert second.try_acquire()
        assert second.token == 2  # a new ownership generation
        # The stale owner can no longer renew.
        assert not first.try_acquire()

    def test_release_frees_the_lease_but_keeps_token_history(self, store):
        lease = SpecmapLease(store, "n1", ttl_seconds=5.0)
        assert lease.try_acquire()
        assert lease.release()
        assert not lease.holds()
        # Released != unlinked: the fencing-token history survives, so
        # the next owner's generation is still strictly larger.
        assert store.read_lease("specmap")["token"] == 1
        other = SpecmapLease(store, "n2", ttl_seconds=5.0)
        assert other.try_acquire()
        assert other.token == 2

    def test_release_refused_for_non_owner(self, store):
        assert SpecmapLease(store, "n1", ttl_seconds=5.0).try_acquire()
        assert not SpecmapLease(store, "n2").release()
        assert store.read_lease("specmap")["owner"] == "n1"

    def test_claim_race_loser_backs_off(self, store):
        # A peer mid-reclaim holds the O_EXCL claim marker for the next
        # fencing generation; the loser's acquire returns None instead
        # of double-claiming.
        claims = store.root / "cluster" / "leases"
        claims.mkdir(parents=True)
        (claims / "specmap.1.claim").write_text("peer")
        assert store.acquire_lease("specmap", "n1", 5.0) is None

    def test_corrupt_lease_file_reads_as_absent(self, store):
        assert store.acquire_lease("specmap", "n1", 5.0)
        store._lease_path("specmap").write_text("not json")
        assert store.read_lease("specmap") is None


class TestNodeDirectory:
    def test_announce_roundtrip_and_liveness(self, store):
        directory = NodeDirectory(store, ttl_seconds=5.0)
        directory.announce("n1", {"host": "127.0.0.1", "port": 1234})
        nodes = directory.nodes()
        assert [n["node_id"] for n in nodes] == ["n1"]
        assert nodes[0]["port"] == 1234
        assert nodes[0]["stale"] is False
        assert "n1" in directory.live()

    def test_stale_manifest_excluded_after_ttl(self, store):
        directory = NodeDirectory(store, ttl_seconds=0.5)
        directory.announce("dead", {"host": "127.0.0.1", "port": 1})
        path = store._node_path("dead")
        payload = json.loads(path.read_text())
        payload["updated_at"] = time.time() - 60.0
        path.write_text(json.dumps(payload))
        assert directory.nodes() == []
        assert "dead" not in directory.live()
        flagged = directory.nodes(include_stale=True)
        assert flagged and flagged[0]["stale"] is True

    def test_remove_withdraws_the_manifest(self, store):
        directory = NodeDirectory(store, ttl_seconds=5.0)
        directory.announce("n1", {})
        directory.remove("n1")
        assert directory.nodes(include_stale=True) == []

    def test_gc_sweeps_aged_cluster_files(self, store):
        directory = NodeDirectory(store, ttl_seconds=5.0)
        directory.announce("n1", {})
        assert store.acquire_lease("specmap", "n1", 5.0)
        store.gc(max_age_seconds=0.0)
        assert store.load_node_manifests() == []
        assert store.read_lease("specmap") is None


class TestSpecmapGuard:
    def test_non_holder_writes_are_skipped_and_counted(self, tmp_path):
        root = tmp_path / "store"
        store = ArtifactStore(root)
        install_specmap_guard(root, "n2")
        try:
            skipped_before = store.stats.specmap_writes_skipped
            store.save_spec_key("aa" * 20, "bb" * 20)
            assert store.load_spec_key("aa" * 20) is None
            assert (
                store.stats.specmap_writes_skipped == skipped_before + 1
            )
            # Once n2 holds the lease, the same write goes through.
            assert store.acquire_lease("specmap", "n2", 5.0)
            store.save_spec_key("aa" * 20, "bb" * 20)
            assert store.load_spec_key("aa" * 20) == "bb" * 20
        finally:
            set_specmap_guard(root, None)

    def test_guard_checks_disk_not_memory(self, tmp_path):
        # The guard must re-read ownership per call (forked cold
        # workers evaluate it long after installation): losing the
        # lease flips the verdict without reinstalling anything.
        root = tmp_path / "store"
        store = ArtifactStore(root)
        guard = install_specmap_guard(root, "n1")
        try:
            assert store.acquire_lease("specmap", "n1", 5.0)
            assert guard() is True
            store.release_lease("specmap", "n1")
            assert store.acquire_lease("specmap", "n2", 5.0)
            assert guard() is False
        finally:
            set_specmap_guard(root, None)


class TestRouting:
    def _router(self, tmp_path, manifests):
        store = ArtifactStore(tmp_path / "store")
        directory = NodeDirectory(store, ttl_seconds=5.0)
        for node_id, manifest in manifests.items():
            directory.announce(node_id, manifest)
        return ClusterRouter(tmp_path / "store", lease_ttl=5.0)

    def test_gossip_affinity_routes_to_the_holder(self, tmp_path):
        router = self._router(
            tmp_path,
            {
                "n1": {"host": "h", "port": 1, "depth": 0,
                       "warm_keys": []},
                "n2": {"host": "h", "port": 2, "depth": 0,
                       "warm_keys": ["k-hot"]},
            },
        )
        live = router.directory.live()
        assert router._candidates("k-hot", live)[0] == "n2"
        assert router.affinity_hits == 1

    def test_fallback_is_least_loaded(self, tmp_path):
        router = self._router(
            tmp_path,
            {
                "n1": {"host": "h", "port": 1, "depth": 7,
                       "warm_keys": []},
                "n2": {"host": "h", "port": 2, "depth": 0,
                       "warm_keys": []},
            },
        )
        live = router.directory.live()
        assert router._candidates("k-unknown", live)[0] == "n2"
        assert router.affinity_hits == 0

    def test_sticky_beats_gossip_and_load(self, tmp_path):
        router = self._router(
            tmp_path,
            {
                "n1": {"host": "h", "port": 1, "depth": 9,
                       "warm_keys": []},
                "n2": {"host": "h", "port": 2, "depth": 0,
                       "warm_keys": ["k"]},
            },
        )
        router._sticky["k"] = "n1"
        live = router.directory.live()
        assert router._candidates("k", live)[0] == "n1"

    def test_pin_and_exclude(self, tmp_path):
        router = self._router(
            tmp_path,
            {
                "n1": {"host": "h", "port": 1, "depth": 0,
                       "warm_keys": []},
                "n2": {"host": "h", "port": 2, "depth": 0,
                       "warm_keys": []},
            },
        )
        live = router.directory.live()
        assert router._candidates("k", live, pin="n2")[0] == "n2"
        assert router._candidates("k", live, exclude=("n1",)) == ["n2"]
        assert router._candidates("k", live, exclude=("n1", "n2")) == []

    def test_tiebreak_is_deterministic(self, tmp_path):
        manifests = {
            f"n{i}": {"host": "h", "port": i, "depth": 0, "warm_keys": []}
            for i in range(1, 4)
        }
        router = self._router(tmp_path, manifests)
        live = router.directory.live()
        first = router._candidates("some-key", live)
        assert first == router._candidates("some-key", live)
