"""The linear-scan backend: the original joined-text substring search.

This is the seed behaviour extracted behind the backend protocol: every
query re-scans the full plaintext.  It stays the default because its
costs are exactly what the paper measures (the command cache of
Sec. IV-F hides repeated queries, not first-time ones).
"""

from __future__ import annotations

from repro.dex.disassembler import Disassembly
from repro.search.backends.base import JoinedText, SearchBackend


class LinearScanBackend(SearchBackend):
    """O(text) substring/regex scans over the joined plaintext."""

    name = "linear"

    def __init__(self, disassembly: Disassembly, store=None) -> None:
        super().__init__(disassembly, store=store)
        self.joined = JoinedText.for_disassembly(disassembly)

    # ------------------------------------------------------------------
    def literal_lines(self, needle: str) -> list[int]:
        self.stats.literal_queries += 1
        return self.joined.literal_lines(needle)

    def pattern_lines(self, pattern: str) -> list[int]:
        self.stats.pattern_queries += 1
        return self.joined.pattern_lines(pattern)

    def token_lines(self, needle: str) -> list[int]:
        # A text scan serves token queries exactly (tokens are verbatim
        # substrings of their lines).
        self.stats.token_queries += 1
        return self.joined.literal_lines(needle)
