"""Unit tests for the raw bytecode-text search engine."""

import pytest

from repro.android.apk import Apk
from repro.dex.builder import AppBuilder
from repro.dex.disassembler import Disassembly
from repro.dex.types import FieldSignature, MethodSignature
from repro.search.caching import SearchCommandCache
from repro.search.index import BytecodeSearcher, instruction_opcode


def _searcher(apk, cache=None):
    return BytecodeSearcher(apk.disassembly, cache=cache)


class TestLiteralSearch:
    def test_find_invocations_of_private_method(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        callee = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        hits = searcher.find_invocations(callee)
        assert len(hits) == 1
        assert hits[0].method == MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )

    def test_method_header_does_not_count_as_invocation(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        callee = MethodSignature(
            "com.connectsdk.service.NetcastTVService", "connect", (), "void"
        )
        hits = searcher.find_invocations(callee)
        assert all("invoke-" in h.line for h in hits)
        # connect() is invoked exactly once, from MainActivity.onCreate.
        assert len(hits) == 1
        assert hits[0].method.class_name == "com.lge.app1.MainActivity"

    def test_no_hits_for_unknown_signature(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        ghost = MethodSignature("com.nowhere.Ghost", "boo", (), "void")
        assert searcher.find_invocations(ghost) == []

    def test_hit_carries_stmt_index(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        callee = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        hit = searcher.find_invocations(callee)[0]
        assert hit.stmt_index is not None and hit.stmt_index >= 0


class TestFieldSearch:
    def test_find_field_accesses(self, palcomp3):
        searcher = _searcher(palcomp3)
        port = FieldSignature("com.studiosol.palcomp3.MP3LocalServer", "PORT", "int")
        accesses = searcher.find_field_accesses(port)
        kinds = {("sput" in h.line, "sget" in h.line) for h in accesses}
        assert (True, False) in kinds  # the <clinit> write
        assert (False, True) in kinds  # the <init> read

    def test_writes_only_filter(self, palcomp3):
        searcher = _searcher(palcomp3)
        port = FieldSignature("com.studiosol.palcomp3.MP3LocalServer", "PORT", "int")
        writes = searcher.find_field_accesses(port, writes_only=True)
        assert len(writes) == 1
        assert writes[0].method.name == "<clinit>"


class TestIccPrimitives:
    def test_find_const_class(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        hits = searcher.find_const_class("com.lge.app1.fota.HttpServerService")
        assert len(hits) == 1
        assert hits[0].method.class_name == "com.lge.app1.MainActivity"

    def test_find_invocations_by_name(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        hits = searcher.find_invocations_by_name("startService")
        assert len(hits) == 1
        assert hits[0].method.name == "onCreate"


class TestClassMentions:
    def test_classes_mentioning(self, heyzap):
        searcher = _searcher(heyzap)
        users = searcher.classes_mentioning("com.heyzap.internal.APIClient")
        assert users == {"com.heyzap.house.model.AdModel"}

    def test_mention_chain_to_entry(self, heyzap):
        searcher = _searcher(heyzap)
        users = searcher.classes_mentioning("com.heyzap.house.model.AdModel")
        assert "com.heyzap.sdk.ads.HeyzapInterstitialActivity" in users


def _decoy_app():
    """An app whose string literals impersonate instruction lines.

    ``Victim.m`` is really invoked once and its field really accessed
    once; every other mention lives inside ``const-string`` values that
    embed the dex signature next to an opcode-looking word.  Opcode
    filters that substring-match the whole line count the decoys too.
    """
    app = AppBuilder()
    victim = app.new_class("com.x.Victim")
    victim.field("flag", "int", static=True)
    m = victim.method("m", static=True)
    m.return_void()

    caller = app.new_class("com.x.Caller")
    call = caller.method("call", static=True)
    call.invoke_static("com.x.Victim", "m")
    call.get_static("com.x.Victim", "flag", "int")
    call.const_string("invoke-virtual {v0}, Lcom/x/Victim;.m:()V")
    call.const_string("iget-object v0, v1, Lcom/x/Victim;.flag:I")
    call.const_string("sput v0, Lcom/x/Victim;.flag:I")
    call.const_string("const-class v1, Lcom/x/Victim;")
    call.return_void()
    return Apk(package="com.x", classes=app.build())


@pytest.mark.parametrize("backend", ["linear", "indexed"])
class TestOpcodePositionFilters:
    """Regression: opcodes must match at the mnemonic slot, not anywhere
    in the line — a crafted ``const-string`` embedding a signature plus
    ``invoke-``/``iget``/... must never pass for a real site."""

    def test_invocation_decoy_excluded(self, backend):
        apk = _decoy_app()
        searcher = BytecodeSearcher(apk.disassembly, backend=backend)
        sig = MethodSignature("com.x.Victim", "m", (), "void")
        hits = searcher.find_invocations(sig)
        assert len(hits) == 1
        assert hits[0].method.name == "call"
        assert instruction_opcode(hits[0].line) == "invoke-static"

    def test_field_access_decoys_excluded(self, backend):
        apk = _decoy_app()
        searcher = BytecodeSearcher(apk.disassembly, backend=backend)
        fsig = FieldSignature("com.x.Victim", "flag", "int")
        hits = searcher.find_field_accesses(fsig)
        assert len(hits) == 1
        assert instruction_opcode(hits[0].line) == "sget"
        # The "sput ..." decoy string must not count as a write either.
        assert searcher.find_field_accesses(fsig, writes_only=True) == []

    def test_const_class_decoy_excluded(self, backend):
        apk = _decoy_app()
        searcher = BytecodeSearcher(apk.disassembly, backend=backend)
        hits = searcher.find_const_class("com.x.Victim")
        assert hits == []


class TestInstructionOpcode:
    def test_rendered_invoke_line(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        sig = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        line = searcher.find_invocations(sig)[0].line
        assert instruction_opcode(line) == "invoke-virtual"

    def test_wide_address_and_offset_still_match(self):
        # The renderer's :06x/:04x widths grow on huge apps; the opcode
        # slot must still be recognised past 0xFFFFFF / 0xFFFF.
        gutter = " " * 24
        line = f"1abcdef0: {gutter}|11170: invoke-static {{}}, La;.m:()V"
        assert instruction_opcode(line) == "invoke-static"

    def test_non_instruction_lines_have_no_opcode(self, lg_tv_plus):
        assert instruction_opcode("  Class descriptor  : 'Lcom/a/B;'") is None
        assert instruction_opcode("") is None
        # Method headers use |[addr], not |off: — never an opcode slot.
        header = next(
            line for line in lg_tv_plus.disassembly.lines if "|[" in line
        )
        assert instruction_opcode(header) is None


class TestSubclassHeaderAttribution:
    """Regression for the stale ``current_class`` in
    ``subclass_header_mentions``: each hit resolves against its *own*
    nearest class-descriptor line, and an unresolvable hit contributes
    nothing instead of inheriting the previous hit's class."""

    def _handcrafted(self, lines):
        return BytecodeSearcher(
            Disassembly(lines, blocks=[]), backend="linear"
        )

    def test_malformed_descriptor_contributes_nothing(self):
        searcher = self._handcrafted([
            "  Class descriptor  : 'Lcom/a/Sub;'",
            "  Superclass        : 'Lcom/a/Base;'",
            "  Class descriptor  : <unparseable>",
            "  Superclass        : 'Lcom/a/Base;'",
        ])
        assert searcher.subclass_header_mentions("com.a.Base") == {"com.a.Sub"}
        assert searcher._owning_class_of(3) is None

    def test_hit_before_any_descriptor_contributes_nothing(self):
        searcher = self._handcrafted([
            "  Superclass        : 'Lcom/a/Base;'",
            "  Class descriptor  : 'Lcom/a/Sub;'",
            "  Superclass        : 'Lcom/a/Base;'",
        ])
        assert searcher.subclass_header_mentions("com.a.Base") == {"com.a.Sub"}
        assert searcher._owning_class_of(0) is None

    def test_each_hit_attributed_to_its_own_class(self):
        searcher = self._handcrafted([
            "  Class descriptor  : 'Lcom/a/One;'",
            "  Superclass        : 'Lcom/a/Base;'",
            "  Class descriptor  : 'Lcom/a/Two;'",
            "  Superclass        : 'Lcom/a/Base;'",
        ])
        assert searcher.subclass_header_mentions("com.a.Base") == \
            {"com.a.One", "com.a.Two"}
        assert searcher._owning_class_of(1) == "com.a.One"
        assert searcher._owning_class_of(3) == "com.a.Two"

    def test_self_mention_suppressed(self):
        searcher = self._handcrafted([
            "  Class descriptor  : 'Lcom/a/Base;'",
            "  Superclass        : 'Ljava/lang/Object;'",
        ])
        assert searcher.subclass_header_mentions("com.a.Base") == set()


class TestCommandCaching:
    def test_repeated_commands_hit_cache(self, lg_tv_plus):
        cache = SearchCommandCache()
        searcher = _searcher(lg_tv_plus, cache=cache)
        callee = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        first = searcher.find_invocations(callee)
        assert cache.stats.hits == 0
        second = searcher.find_invocations(callee)
        assert second == first
        assert cache.stats.hits == 1
        assert 0.0 < cache.stats.rate < 1.0

    def test_cache_rates_by_kind(self, lg_tv_plus):
        cache = SearchCommandCache()
        searcher = _searcher(lg_tv_plus, cache=cache)
        searcher.find_const_class("com.lge.app1.fota.HttpServerService")
        searcher.find_const_class("com.lge.app1.fota.HttpServerService")
        assert cache.stats_by_kind["invoked-class"].hits == 1
