"""Unit tests for driver configuration and sink-site discovery."""

from repro.android.framework import sinks_for_rules
from repro.core import BackDroid, BackDroidConfig
from repro.workload.paperapps import build_lg_tv_plus, build_palcomp3


class TestConfig:
    def test_default_rules_are_the_papers(self):
        config = BackDroidConfig()
        rules = {spec.rule for spec in config.sink_specs()}
        assert rules == {"crypto-ecb", "ssl-verifier"}

    def test_explicit_sink_list_overrides_rules(self):
        explicit = sinks_for_rules(("open-port",))
        config = BackDroidConfig(sink_rules=("crypto-ecb",), sinks=explicit)
        assert config.sink_specs() == explicit

    def test_rule_selection(self):
        config = BackDroidConfig(sink_rules=("open-port",))
        assert all(s.rule == "open-port" for s in config.sink_specs())


class TestSinkSiteDiscovery:
    def test_sites_sorted_and_unique(self):
        apk = build_lg_tv_plus()
        driver = BackDroid(BackDroidConfig(sink_rules=("open-port",)))
        sites = driver.find_sink_call_sites(apk)
        keys = [(str(s.method), s.stmt_index) for s in sites]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_no_sites_for_unused_rules(self):
        apk = build_lg_tv_plus()
        driver = BackDroid(BackDroidConfig(sink_rules=("sms-send",)))
        assert driver.find_sink_call_sites(apk) == []

    def test_multiple_rule_families_combined(self):
        apk = build_palcomp3()
        driver = BackDroid(BackDroidConfig(sink_rules=("open-port", "crypto-ecb")))
        sites = driver.find_sink_call_sites(apk)
        assert {s.spec.rule for s in sites} == {"open-port"}
        # Only bind() qualifies: the app constructs the socket with the
        # no-argument constructor, which is not in the sink catalogue.
        names = {s.spec.signature.name for s in sites}
        assert names == {"bind"}

    def test_report_contains_one_record_per_site(self):
        apk = build_palcomp3()
        driver = BackDroid(BackDroidConfig(sink_rules=("open-port",)))
        sites = driver.find_sink_call_sites(apk)
        report = driver.analyze(apk)
        assert report.sink_count == len(sites)
