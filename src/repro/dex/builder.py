"""A fluent DSL for authoring DEX classes and method bodies.

Tests and the synthetic workload generator use this builder to express app
code compactly.  Example — the paper's Fig. 3 caller::

    app = AppBuilder()
    server = app.new_class("com.connectsdk.service.netcast.NetcastHttpServer")
    start = server.method("start")
    start.this()
    start.return_void()

    runner = app.new_class(
        "com.connectsdk.service.NetcastTVService$1",
        interfaces=["java.lang.Runnable"],
    )
    run = runner.method("run")
    this = run.this()
    srv = run.new_init("com.connectsdk.service.netcast.NetcastHttpServer")
    run.invoke_virtual(srv, server.name, "start")
    run.return_void()

    pool = app.build()
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence, Union

from repro.dex.hierarchy import AccessFlags, ClassPool, DexClass, DexField, DexMethod
from repro.dex.instructions import (
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    ClassConstant,
    Constant,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InstanceFieldRef,
    IntConstant,
    InvokeExpr,
    InvokeKind,
    InvokeStmt,
    Local,
    NewArrayExpr,
    NewExpr,
    NopStmt,
    NullConstant,
    ParameterRef,
    PhiExpr,
    ReturnStmt,
    StaticFieldRef,
    StringConstant,
    ThisRef,
    Value,
)
from repro.dex.types import FieldSignature, MethodSignature

ValueLike = Union[Value, str, int, None]


def _as_value(value: ValueLike) -> Value:
    """Lift Python literals into IR constants for builder convenience."""
    if isinstance(value, Value):
        return value
    if value is None:
        return NullConstant()
    if isinstance(value, bool):
        return IntConstant(int(value))
    if isinstance(value, int):
        return IntConstant(value)
    if isinstance(value, str):
        return StringConstant(value)
    raise TypeError(f"cannot lift {value!r} into an IR value")


class MethodBuilder:
    """Builds one method body, handing out fresh SSA locals."""

    def __init__(self, method: DexMethod) -> None:
        self.method = method
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def signature(self) -> MethodSignature:
        return self.method.signature()

    def fresh(self, java_type: str = "java.lang.Object", prefix: str = "$r") -> Local:
        """Allocate a fresh local of the given type."""
        return Local(f"{prefix}{next(self._counter)}", java_type)

    def emit(self, stmt) -> None:
        self.method.body.append(stmt)

    # ------------------------------------------------------------------
    # Identity statements
    # ------------------------------------------------------------------
    def this(self) -> Local:
        """``r0 := @this`` — bind and return the receiver local."""
        local = self.fresh(self.method.declaring_class, prefix="r")
        self.emit(IdentityStmt(local=local, ref=ThisRef(self.method.declaring_class)))
        return local

    def param(self, index: int) -> Local:
        """``rN := @parameterN`` — bind and return a formal parameter."""
        java_type = self.method.param_types[index]
        local = self.fresh(java_type, prefix="r")
        self.emit(IdentityStmt(local=local, ref=ParameterRef(index, java_type)))
        return local

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    def const_string(self, value: str) -> Local:
        local = self.fresh("java.lang.String")
        self.emit(AssignStmt(lhs=local, rhs=StringConstant(value)))
        return local

    def const_int(self, value: int) -> Local:
        local = self.fresh("int", prefix="$i")
        self.emit(AssignStmt(lhs=local, rhs=IntConstant(value)))
        return local

    def const_null(self, java_type: str = "java.lang.Object") -> Local:
        local = self.fresh(java_type)
        self.emit(AssignStmt(lhs=local, rhs=NullConstant()))
        return local

    def const_class(self, class_name: str) -> Local:
        local = self.fresh("java.lang.Class")
        self.emit(AssignStmt(lhs=local, rhs=ClassConstant(class_name)))
        return local

    # ------------------------------------------------------------------
    # Allocation and construction
    # ------------------------------------------------------------------
    def new(self, class_name: str) -> Local:
        """``$rN = new C`` (constructor must be invoked separately)."""
        local = self.fresh(class_name)
        self.emit(AssignStmt(lhs=local, rhs=NewExpr(class_name)))
        return local

    def new_init(
        self,
        class_name: str,
        args: Sequence[ValueLike] = (),
        ctor_params: Optional[Sequence[str]] = None,
    ) -> Local:
        """``new C`` followed by ``specialinvoke $r.<C: void <init>(...)>``."""
        local = self.new(class_name)
        lifted = [_as_value(a) for a in args]
        if ctor_params is None:
            ctor_params = [
                getattr(a, "java_type", "java.lang.Object")
                if isinstance(a, Local)
                else _default_param_type(a)
                for a in lifted
            ]
        ctor = MethodSignature(class_name, "<init>", tuple(ctor_params), "void")
        self.emit(
            InvokeStmt(
                invoke=InvokeExpr(InvokeKind.SPECIAL, ctor, base=local, args=tuple(lifted))
            )
        )
        return local

    def new_array(self, element_type: str, size: ValueLike) -> Local:
        local = self.fresh(f"{element_type}[]")
        self.emit(AssignStmt(lhs=local, rhs=NewArrayExpr(element_type, _as_value(size))))
        return local

    # ------------------------------------------------------------------
    # Invocations
    # ------------------------------------------------------------------
    def _invoke(
        self,
        kind: InvokeKind,
        base: Optional[Local],
        method: Union[MethodSignature, str],
        name: Optional[str],
        args: Sequence[ValueLike],
        params: Optional[Sequence[str]],
        returns: Optional[str],
    ) -> Optional[Local]:
        lifted = tuple(_as_value(a) for a in args)
        if isinstance(method, MethodSignature):
            sig = method
        else:
            if params is None:
                params = [
                    getattr(a, "java_type", "java.lang.Object")
                    if isinstance(a, Local)
                    else _default_param_type(a)
                    for a in lifted
                ]
            sig = MethodSignature(method, name or "", tuple(params), returns or "void")
        expr = InvokeExpr(kind, sig, base=base, args=lifted)
        if sig.return_type != "void":
            result = self.fresh(sig.return_type)
            self.emit(AssignStmt(lhs=result, rhs=expr))
            return result
        self.emit(InvokeStmt(invoke=expr))
        return None

    def invoke_virtual(
        self,
        base: Local,
        class_name: Union[MethodSignature, str],
        name: Optional[str] = None,
        args: Sequence[ValueLike] = (),
        params: Optional[Sequence[str]] = None,
        returns: str = "void",
    ) -> Optional[Local]:
        return self._invoke(InvokeKind.VIRTUAL, base, class_name, name, args, params, returns)

    def invoke_interface(
        self,
        base: Local,
        class_name: Union[MethodSignature, str],
        name: Optional[str] = None,
        args: Sequence[ValueLike] = (),
        params: Optional[Sequence[str]] = None,
        returns: str = "void",
    ) -> Optional[Local]:
        return self._invoke(InvokeKind.INTERFACE, base, class_name, name, args, params, returns)

    def invoke_special(
        self,
        base: Local,
        class_name: Union[MethodSignature, str],
        name: Optional[str] = None,
        args: Sequence[ValueLike] = (),
        params: Optional[Sequence[str]] = None,
        returns: str = "void",
    ) -> Optional[Local]:
        return self._invoke(InvokeKind.SPECIAL, base, class_name, name, args, params, returns)

    def invoke_static(
        self,
        class_name: Union[MethodSignature, str],
        name: Optional[str] = None,
        args: Sequence[ValueLike] = (),
        params: Optional[Sequence[str]] = None,
        returns: str = "void",
    ) -> Optional[Local]:
        return self._invoke(InvokeKind.STATIC, None, class_name, name, args, params, returns)

    # ------------------------------------------------------------------
    # Field access
    # ------------------------------------------------------------------
    def get_field(self, base: Local, class_name: str, name: str, field_type: str) -> Local:
        local = self.fresh(field_type)
        ref = InstanceFieldRef(base, FieldSignature(class_name, name, field_type))
        self.emit(AssignStmt(lhs=local, rhs=ref))
        return local

    def put_field(
        self, base: Local, class_name: str, name: str, field_type: str, value: ValueLike
    ) -> None:
        ref = InstanceFieldRef(base, FieldSignature(class_name, name, field_type))
        self.emit(AssignStmt(lhs=ref, rhs=_as_value(value)))

    def get_static(self, class_name: str, name: str, field_type: str) -> Local:
        local = self.fresh(field_type)
        ref = StaticFieldRef(FieldSignature(class_name, name, field_type))
        self.emit(AssignStmt(lhs=local, rhs=ref))
        return local

    def put_static(self, class_name: str, name: str, field_type: str, value: ValueLike) -> None:
        ref = StaticFieldRef(FieldSignature(class_name, name, field_type))
        self.emit(AssignStmt(lhs=ref, rhs=_as_value(value)))

    # ------------------------------------------------------------------
    # Arrays
    # ------------------------------------------------------------------
    def array_get(self, base: Local, index: ValueLike, element_type: str = "java.lang.Object") -> Local:
        local = self.fresh(element_type)
        self.emit(AssignStmt(lhs=local, rhs=ArrayRef(base, _as_value(index))))
        return local

    def array_put(self, base: Local, index: ValueLike, value: ValueLike) -> None:
        self.emit(AssignStmt(lhs=ArrayRef(base, _as_value(index)), rhs=_as_value(value)))

    # ------------------------------------------------------------------
    # Dataflow / control flow
    # ------------------------------------------------------------------
    def assign(self, target_type: str, value: ValueLike) -> Local:
        local = self.fresh(target_type)
        self.emit(AssignStmt(lhs=local, rhs=_as_value(value)))
        return local

    def move(self, source: Local) -> Local:
        """``$rN = source`` — a plain local-to-local copy."""
        local = self.fresh(source.java_type)
        self.emit(AssignStmt(lhs=local, rhs=source))
        return local

    def binop(self, op: str, left: ValueLike, right: ValueLike, result_type: str = "int") -> Local:
        local = self.fresh(result_type, prefix="$i" if result_type == "int" else "$r")
        self.emit(AssignStmt(lhs=local, rhs=BinopExpr(op, _as_value(left), _as_value(right))))
        return local

    def cast(self, to_type: str, value: ValueLike) -> Local:
        local = self.fresh(to_type)
        self.emit(AssignStmt(lhs=local, rhs=CastExpr(to_type, _as_value(value))))
        return local

    def phi(self, values: Sequence[ValueLike], result_type: str = "java.lang.Object") -> Local:
        local = self.fresh(result_type)
        self.emit(AssignStmt(lhs=local, rhs=PhiExpr(tuple(_as_value(v) for v in values))))
        return local

    def if_goto(self, condition: ValueLike, target: str) -> None:
        self.emit(IfStmt(condition=_as_value(condition), target=target))

    def goto(self, target: str) -> None:
        self.emit(GotoStmt(target=target))

    def label(self, name: str) -> None:
        self.emit(NopStmt(label=name))

    def return_void(self) -> None:
        self.emit(ReturnStmt())

    def return_value(self, value: ValueLike) -> None:
        self.emit(ReturnStmt(value=_as_value(value)))


def _default_param_type(value: Value) -> str:
    if isinstance(value, StringConstant):
        return "java.lang.String"
    if isinstance(value, IntConstant):
        return "int"
    if isinstance(value, ClassConstant):
        return "java.lang.Class"
    if isinstance(value, NullConstant):
        return "java.lang.Object"
    return "java.lang.Object"


class ClassBuilder:
    """Builds one class: fields, methods, hierarchy links."""

    def __init__(
        self,
        name: str,
        super_name: str = "java.lang.Object",
        interfaces: Iterable[str] = (),
        flags: AccessFlags = AccessFlags.PUBLIC,
        is_framework: bool = False,
    ) -> None:
        self.dex_class = DexClass(
            name=name,
            super_name=super_name,
            interfaces=tuple(interfaces),
            flags=flags,
            is_framework=is_framework,
        )

    @property
    def name(self) -> str:
        return self.dex_class.name

    def field(
        self,
        name: str,
        field_type: str,
        static: bool = False,
        flags: AccessFlags = AccessFlags.PUBLIC,
    ) -> DexField:
        if static:
            flags |= AccessFlags.STATIC
        return self.dex_class.add_field(DexField(name=name, field_type=field_type, flags=flags))

    def method(
        self,
        name: str,
        params: Sequence[str] = (),
        returns: str = "void",
        flags: AccessFlags = AccessFlags.PUBLIC,
        static: bool = False,
        private: bool = False,
        abstract: bool = False,
    ) -> MethodBuilder:
        if static:
            flags |= AccessFlags.STATIC
        if private:
            flags = (flags & ~AccessFlags.PUBLIC) | AccessFlags.PRIVATE
        if abstract:
            flags |= AccessFlags.ABSTRACT
        if name == "<init>":
            flags |= AccessFlags.CONSTRUCTOR
        if name == "<clinit>":
            flags |= AccessFlags.STATIC | AccessFlags.CONSTRUCTOR
        method = self.dex_class.add_method(
            DexMethod(name=name, param_types=tuple(params), return_type=returns, flags=flags)
        )
        return MethodBuilder(method)

    def constructor(
        self, params: Sequence[str] = (), flags: AccessFlags = AccessFlags.PUBLIC
    ) -> MethodBuilder:
        return self.method("<init>", params=params, flags=flags)

    def default_constructor(self) -> MethodBuilder:
        """An empty ``<init>()`` calling ``Object.<init>`` and returning."""
        ctor = self.constructor()
        this = ctor.this()
        ctor.invoke_special(
            this,
            MethodSignature("java.lang.Object", "<init>", (), "void"),
        )
        ctor.return_void()
        return ctor

    def static_initializer(self) -> MethodBuilder:
        return self.method("<clinit>")

    def build(self) -> DexClass:
        return self.dex_class


class AppBuilder:
    """Builds a full application :class:`ClassPool`."""

    def __init__(self) -> None:
        self._builders: list[ClassBuilder] = []

    def new_class(
        self,
        name: str,
        superclass: str = "java.lang.Object",
        interfaces: Iterable[str] = (),
        flags: AccessFlags = AccessFlags.PUBLIC,
    ) -> ClassBuilder:
        builder = ClassBuilder(name, super_name=superclass, interfaces=interfaces, flags=flags)
        self._builders.append(builder)
        return builder

    def new_interface(self, name: str, interfaces: Iterable[str] = ()) -> ClassBuilder:
        builder = ClassBuilder(
            name,
            super_name="java.lang.Object",
            interfaces=interfaces,
            flags=AccessFlags.PUBLIC | AccessFlags.INTERFACE | AccessFlags.ABSTRACT,
        )
        self._builders.append(builder)
        return builder

    def build(self) -> ClassPool:
        return ClassPool(builder.build() for builder in self._builders)
