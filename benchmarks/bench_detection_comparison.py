"""Sec. VI-C — detection effectiveness comparison.

Paper findings to reproduce in shape:

* BackDroid detects (nearly) everything Amandroid detects — its only
  misses are sinks wrapped by an app class hierarchy (2 FNs in the
  paper, the ``com.gta.nslm2`` shape);
* BackDroid avoids Amandroid's false positives from unregistered
  components (6 FPs in the paper);
* BackDroid additionally detects apps Amandroid misses, for four
  attributable causes: timed-out failures (28/54 in the paper), skipped
  libraries (8/54), unrobust async/callback handling (8/54) and
  occasional whole-app analysis errors (10/54).
"""

from collections import Counter

from benchmarks.conftest import emit_table, render_table, run_corpus

_ASYNC_PATTERNS = {"async_executor", "async_asynctask", "callback_onclick"}


def _classify(rows):
    """Per-pattern-instance confusion and cause attribution."""
    stats = Counter()
    causes = Counter()
    for row in rows:
        bd_found = set(row.bd_findings)
        am_found = set(row.am_findings)
        for truth in row.truths:
            if truth.rule is None:
                continue
            key = (truth.rule, truth.sink_class)
            bd = key in bd_found
            am = key in am_found
            if truth.truly_vulnerable:
                stats["vulnerable_total"] += 1
                if bd and am:
                    stats["both"] += 1
                elif bd and not am:
                    stats["backdroid_only"] += 1
                    if row.am_timed_out:
                        causes["timed-out failure"] += 1
                    elif row.am_error:
                        causes["whole-app analysis error"] += 1
                    elif truth.pattern == "library_skipped":
                        causes["skipped library"] += 1
                    elif truth.pattern in _ASYNC_PATTERNS:
                        causes["async flow / callback"] += 1
                    else:
                        causes["other"] += 1
                elif am and not bd:
                    stats["amandroid_only"] += 1
                    stats[f"amandroid_only:{truth.pattern}"] += 1
                else:
                    stats["both_missed"] += 1
            else:
                if bd:
                    stats["backdroid_fp"] += 1
                if am:
                    stats["amandroid_fp"] += 1
                    stats[f"amandroid_fp:{truth.pattern}"] += 1
    return stats, causes


def _app_level(rows):
    """Per-app topline, matching the paper's accounting."""
    counts = Counter()
    for row in rows:
        truly = any(t.truly_vulnerable for t in row.truths)
        bd = row.bd_vulnerable
        am = row.am_vulnerable
        if bd and am:
            counts["apps_both"] += 1
        elif bd:
            counts["apps_bd_only"] += 1
        elif am:
            counts["apps_am_only"] += 1
        if am and not truly:
            counts["apps_am_fp"] += 1
        if bd and not truly:
            counts["apps_bd_fp"] += 1
    return counts


def test_detection_comparison(benchmark):
    rows = benchmark.pedantic(run_corpus, rounds=1, iterations=1)
    stats, causes = _classify(rows)
    apps = _app_level(rows)

    app_table = render_table(
        "Sec. VI-C: detection comparison (per app)",
        ["Category", "Count", "Paper analogue"],
        [
            ["apps flagged by both", str(apps["apps_both"]), "22 shared TPs"],
            ["apps flagged by BackDroid only", str(apps["apps_bd_only"]),
             "54 additional apps"],
            ["apps flagged by Amandroid only", str(apps["apps_am_only"]),
             "2 (BackDroid FNs)"],
            ["apps falsely flagged by Amandroid", str(apps["apps_am_fp"]),
             "6 FPs"],
            ["apps falsely flagged by BackDroid", str(apps["apps_bd_fp"]), "0"],
        ],
    )
    emit_table("detection_comparison_apps", app_table)

    table = render_table(
        "Sec. VI-C: detection comparison (per sink-pattern instance)",
        ["Category", "Count", "Paper analogue"],
        [
            ["truly vulnerable instances", str(stats["vulnerable_total"]), "-"],
            ["detected by both", str(stats["both"]), "22 shared TPs"],
            ["BackDroid only", str(stats["backdroid_only"]),
             "54 additional apps"],
            ["  cause: timed-out failure",
             str(causes["timed-out failure"]), "28 of 54"],
            ["  cause: skipped library",
             str(causes["skipped library"]), "8 of 54"],
            ["  cause: async flow / callback",
             str(causes["async flow / callback"]), "8 of 54"],
            ["  cause: whole-app analysis error",
             str(causes["whole-app analysis error"]), "10 of 54"],
            ["Amandroid only (BackDroid FN)", str(stats["amandroid_only"]),
             "2 FNs (hierarchy-wrapped sinks)"],
            ["Amandroid false positives", str(stats["amandroid_fp"]),
             "6 FPs (unregistered components)"],
            ["BackDroid false positives", str(stats["backdroid_fp"]), "0"],
        ],
    )
    emit_table("detection_comparison", table)

    # Shape assertions.
    assert stats["backdroid_fp"] == 0, "BackDroid must avoid the FP shapes"
    assert stats["amandroid_fp"] > 0, "the unregistered-component FPs exist"
    assert stats["backdroid_only"] > stats["amandroid_only"], (
        "BackDroid's extra detections outnumber its misses"
    )
    # Every BackDroid miss is the documented hierarchy-wrapped shape.
    hierarchy_misses = stats["amandroid_only:hierarchy_wrapped_sink"]
    assert hierarchy_misses == stats["amandroid_only"]
    # All four paper causes are represented.
    for cause in ("timed-out failure", "skipped library",
                  "async flow / callback", "whole-app analysis error"):
        assert causes[cause] > 0, f"cause {cause!r} must appear in the corpus"
    # The dominant cause is timeouts, as in the paper (28 of 54).
    assert causes["timed-out failure"] == max(causes.values())
