"""Tests for the implemented future-work extensions.

* per-app SSG (Sec. V-A / VI-D evolution);
* reflection resolution (Sec. VII plan).
"""

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.core import BackDroid, BackDroidConfig
from repro.core.per_app import build_per_app_ssg
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature
from repro.search.reflection import ReflectionResolver
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PatternSpec


class TestPerAppSSG:
    def _apk_with_shared_paths(self):
        """Two sinks sharing most of their backtracking path."""
        app = AppBuilder()
        manifest = Manifest("com.pa")
        helper = app.new_class("com.pa.H")
        m = helper.method("work", params=["java.lang.String"], static=True)
        arg = m.param(0)
        m.invoke_static(
            "javax.crypto.Cipher", "getInstance", args=[arg],
            params=["java.lang.String"], returns="javax.crypto.Cipher",
        )
        m.invoke_static(
            "javax.crypto.Cipher", "getInstance", args=[arg],
            params=["java.lang.String"], returns="javax.crypto.Cipher",
        )
        m.return_void()
        main = app.new_class("com.pa.Main", superclass="android.app.Activity")
        main.default_constructor()
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        t = oc.const_string("AES/ECB/PKCS5Padding")
        oc.invoke_static("com.pa.H", "work", args=[t], params=["java.lang.String"])
        oc.return_void()
        manifest.register("com.pa.Main", ComponentKind.ACTIVITY)
        return Apk(package="com.pa", classes=app.build(), manifest=manifest)

    def test_merge_shares_overlapping_paths(self):
        apk = self._apk_with_shared_paths()
        driver = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",)))
        sites = driver.find_sink_call_sites(apk)
        assert len(sites) == 2
        merged = build_per_app_ssg(apk, sites)
        assert len(merged.slices) == 2
        # The two slices share the wrapper path, so the merged graph is
        # strictly smaller than the sum of the slices.
        assert merged.unit_count < merged.summed_slice_units
        assert merged.sharing_ratio < 1.0

    def test_partial_graph_stays_partial(self):
        generated = generate_app(
            AppSpec(package="com.pa2", seed=4,
                    patterns=(PatternSpec("direct_entry", insecure=True),),
                    filler_classes=40)
        )
        apk = generated.apk
        driver = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",)))
        merged = build_per_app_ssg(apk, driver.find_sink_call_sites(apk))
        # The merged graph must not contain the bulk filler code: that is
        # the whole advantage over whole-app graphs.
        assert merged.coverage_fraction(apk) < 0.2
        assert merged.entry_points

    def test_slice_for_lookup(self):
        apk = self._apk_with_shared_paths()
        driver = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",)))
        sites = driver.find_sink_call_sites(apk)
        merged = build_per_app_ssg(apk, sites)
        assert merged.slice_for(sites[0]) is not None
        assert merged.slice_for(sites[0]).reached_entry


class TestReflectionResolution:
    def _reflective_apk(self):
        app = AppBuilder()
        manifest = Manifest("com.rf")
        target = app.new_class("com.rf.CryptoHelper")
        tm = target.method("encrypt", params=["java.lang.String"], static=True)
        tm.param(0)
        tm.return_void()
        main = app.new_class("com.rf.Main", superclass="android.app.Activity")
        main.default_constructor()
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        name = oc.const_string("com.rf.CryptoHelper")
        cls = oc.invoke_static(
            "java.lang.Class", "forName", args=[name],
            params=["java.lang.String"], returns="java.lang.Class",
        )
        method_name = oc.const_string("encrypt")
        oc.invoke_virtual(
            cls, "java.lang.Class", "getMethod",
            args=[method_name, oc.const_null("java.lang.Class[]")],
            params=["java.lang.String", "java.lang.Class[]"],
            returns="java.lang.reflect.Method",
        )
        oc.return_void()
        manifest.register("com.rf.Main", ComponentKind.ACTIVITY)
        return Apk(package="com.rf", classes=app.build(), manifest=manifest)

    def test_forname_string_resolved_to_edge(self):
        apk = self._reflective_apk()
        resolver = ReflectionResolver(apk)
        edges = resolver.resolve_all()
        assert len(edges) == 1
        edge = edges[0]
        assert edge.target_class == "com.rf.CryptoHelper"
        assert edge.target_method == "encrypt"
        assert edge.caller.class_name == "com.rf.Main"

    def test_caller_edges_for_target_method(self):
        apk = self._reflective_apk()
        resolver = ReflectionResolver(apk)
        callee = MethodSignature(
            "com.rf.CryptoHelper", "encrypt", ("java.lang.String",), "void"
        )
        callers = resolver.caller_edges_for(callee)
        assert len(callers) == 1
        assert callers[0].kind == "reflection"

    def test_unresolvable_class_name_yields_no_edge(self):
        app = AppBuilder()
        manifest = Manifest("com.rf")
        main = app.new_class("com.rf.Main", superclass="android.app.Activity")
        main.default_constructor()
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        dynamic = oc.invoke_static(
            "com.rf.Remote", "fetchClassName", returns="java.lang.String"
        )
        oc.invoke_static(
            "java.lang.Class", "forName", args=[dynamic],
            params=["java.lang.String"], returns="java.lang.Class",
        )
        oc.return_void()
        manifest.register("com.rf.Main", ComponentKind.ACTIVITY)
        apk = Apk(package="com.rf", classes=app.build(), manifest=manifest)
        assert ReflectionResolver(apk).resolve_all() == []
