"""Property-based tests for class-hierarchy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature


@st.composite
def hierarchies(draw):
    """A random single-inheritance forest over N classes.

    ``parents[i]`` is the superclass index of class i (or None for
    roots); only earlier classes can be parents, so the forest is
    well-founded by construction.
    """
    n = draw(st.integers(min_value=2, max_value=10))
    parents = [None]
    for index in range(1, n):
        parent = draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=index - 1))
        )
        parents.append(parent)
    overriders = draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
    return parents, overriders


def _build(parents, overriders):
    app = AppBuilder()
    for index, parent in enumerate(parents):
        superclass = f"com.h.C{parent}" if parent is not None else "java.lang.Object"
        cls = app.new_class(f"com.h.C{index}", superclass=superclass)
        if index in overriders or parent is None:
            m = cls.method("act")
            m.return_void()
    return app.build()


class TestHierarchyInvariants:
    @given(hierarchies())
    @settings(max_examples=50, deadline=None)
    def test_subtype_is_reflexive_and_transitive(self, case):
        parents, overriders = case
        pool = _build(parents, overriders)
        names = [f"com.h.C{i}" for i in range(len(parents))]
        for name in names:
            assert pool.is_subtype_of(name, name)
        for index, parent in enumerate(parents):
            if parent is None:
                continue
            # direct edge
            assert pool.is_subtype_of(names[index], names[parent])
            # transitivity up the chain
            for ancestor in pool.superclass_chain(names[parent]):
                if ancestor.startswith("com.h."):
                    assert pool.is_subtype_of(names[index], ancestor)

    @given(hierarchies())
    @settings(max_examples=50, deadline=None)
    def test_subclasses_inverse_of_superclass_chain(self, case):
        parents, overriders = case
        pool = _build(parents, overriders)
        names = [f"com.h.C{i}" for i in range(len(parents))]
        for name in names:
            for sub in pool.all_subclasses(name):
                assert name in pool.superclass_chain(sub.name)

    @given(hierarchies())
    @settings(max_examples=50, deadline=None)
    def test_resolution_finds_nearest_declaring_ancestor(self, case):
        parents, overriders = case
        pool = _build(parents, overriders)
        names = [f"com.h.C{i}" for i in range(len(parents))]
        for index in range(len(parents)):
            sig = MethodSignature(names[index], "act", (), "void")
            resolved = pool.resolve_method(sig)
            # Every class has a root ancestor declaring act().
            assert resolved is not None
            # The resolved declarer must be the class itself or a
            # superclass, and no class strictly between them declares it.
            chain = pool.superclass_chain(names[index], include_self=True)
            declarer_pos = chain.index(resolved.declaring_class)
            for between in chain[:declarer_pos]:
                cls = pool.get(between)
                assert cls is None or cls.find_method("act") is None

    @given(hierarchies())
    @settings(max_examples=50, deadline=None)
    def test_override_map_consistent_with_declarations(self, case):
        parents, overriders = case
        pool = _build(parents, overriders)
        names = [f"com.h.C{i}" for i in range(len(parents))]
        roots = [i for i, p in enumerate(parents) if p is None]
        for root in roots:
            sig = MethodSignature(names[root], "act", (), "void")
            for child_name, overrides in pool.overrides_in_children(sig).items():
                child = pool.get(child_name)
                assert overrides == (child.find_method("act") is not None)
