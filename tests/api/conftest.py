"""Shared fixtures for the public-API test suite."""

import pytest

from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import generate_app
from repro.workload.paperapps import build_heyzap, build_lg_tv_plus

#: Small enough for fast tests, big enough to exercise the index.
SCALE = 0.05


@pytest.fixture(scope="module")
def lg_tv_plus():
    return build_lg_tv_plus()


@pytest.fixture(scope="module")
def heyzap():
    return build_heyzap()


@pytest.fixture()
def bench_apk():
    """A freshly generated bench app (no cross-test memoized caches)."""
    return generate_app(benchmark_app_spec(5, scale=SCALE)).apk
