"""Reflection resolution: the paper's Sec. VII plan, implemented.

"In the future, we will first resolve reflection parameters using our
on-the-fly backtracking and then directly build caller edges to cache
them."

Java reflection invokes a method whose identity is data, not code::

    Class<?> cls = Class.forName("com.app.CryptoHelper");
    Method m = cls.getMethod("encrypt", String.class);
    m.invoke(null, "AES/ECB/PKCS5Padding");

This module treats the reflection APIs as *sinks of their own*: the same
backward slicing + forward constant propagation that resolves cipher
transformations resolves the class/method name strings, after which the
reflective call site becomes an ordinary caller edge for the target
method — exactly the paper's plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.android.apk import Apk
from repro.android.framework import SinkSpec
from repro.core.forward import ForwardPropagation
from repro.core.slicer import BackwardSlicer, SinkCallSite
from repro.dex.types import MethodSignature
from repro.search.basic import locate_call_sites
from repro.search.common import ResolvedCaller
from repro.search.engine import CallerResolutionEngine

_FOR_NAME = MethodSignature(
    "java.lang.Class", "forName", ("java.lang.String",), "java.lang.Class"
)
_GET_METHOD = MethodSignature(
    "java.lang.Class", "getMethod",
    ("java.lang.String", "java.lang.Class[]"), "java.lang.reflect.Method",
)

#: Class.forName tracked as a pseudo-sink (param 0 = the class name).
_FORNAME_SPEC = SinkSpec(_FOR_NAME, (0,), "reflection", "Class.forName(name)")
_GETMETHOD_SPEC = SinkSpec(_GET_METHOD, (0,), "reflection", "Class.getMethod(name)")


@dataclass(frozen=True)
class ReflectiveEdge:
    """One resolved reflective call: the caller edge to cache."""

    caller: MethodSignature
    stmt_index: int
    target_class: str
    target_method: Optional[str]

    def as_resolved_caller(self) -> ResolvedCaller:
        return ResolvedCaller(
            method=self.caller, stmt_index=self.stmt_index, kind="reflection"
        )


class ReflectionResolver:
    """Resolves ``Class.forName``/``getMethod`` parameters via backtracking."""

    def __init__(self, apk: Apk, engine: Optional[CallerResolutionEngine] = None):
        self.apk = apk
        self.engine = engine if engine is not None else CallerResolutionEngine(apk)
        self.pool = apk.full_pool
        self._slicer = BackwardSlicer(apk, engine=self.engine)

    # ------------------------------------------------------------------
    def resolve_all(self) -> list[ReflectiveEdge]:
        """Find every reflective call and resolve its string parameters."""
        edges: list[ReflectiveEdge] = []
        for site in self._find_sites(_FORNAME_SPEC):
            class_names = self._resolve_strings(site)
            method_names = self._method_names_near(site)
            for class_name in class_names:
                if self.pool.get(class_name) is None:
                    continue
                if method_names:
                    for method_name in method_names:
                        edges.append(
                            ReflectiveEdge(
                                caller=site.method,
                                stmt_index=site.stmt_index,
                                target_class=class_name,
                                target_method=method_name,
                            )
                        )
                else:
                    edges.append(
                        ReflectiveEdge(
                            caller=site.method,
                            stmt_index=site.stmt_index,
                            target_class=class_name,
                            target_method=None,
                        )
                    )
        return edges

    def caller_edges_for(self, callee: MethodSignature) -> list[ResolvedCaller]:
        """The cached reflective caller edges targeting *callee*.

        This is the hand-off the paper describes: once resolved, a
        reflective call site behaves like a direct caller for the
        backward search.
        """
        return [
            edge.as_resolved_caller()
            for edge in self.resolve_all()
            if edge.target_class == callee.class_name
            and (edge.target_method is None or edge.target_method == callee.name)
        ]

    # ------------------------------------------------------------------
    def _find_sites(self, spec: SinkSpec) -> list[SinkCallSite]:
        sites = []
        for hit in self.engine.searcher.find_invocations(spec.signature):
            if hit.method is None:
                continue
            for index in locate_call_sites(self.pool, hit.method, spec.signature):
                sites.append(SinkCallSite(hit.method, index, spec))
        return sites

    def _resolve_strings(self, site: SinkCallSite) -> list[str]:
        """Backtrack + propagate to recover the tracked string values."""
        ssg = self._slicer.slice_sink(site)
        facts = ForwardPropagation(self.apk, ssg).run()
        fact = facts.get(0)
        return fact.possible_strings() if fact is not None else []

    def _method_names_near(self, site: SinkCallSite) -> list[str]:
        """Resolve ``getMethod`` names in the same method, if any."""
        method = self.pool.resolve_method(site.method)
        if method is None:
            return []
        names: list[str] = []
        for index in locate_call_sites(self.pool, site.method, _GET_METHOD):
            nearby = SinkCallSite(site.method, index, _GETMETHOD_SPEC)
            names.extend(self._resolve_strings(nearby))
        return names
