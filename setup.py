"""Legacy setup shim.

This offline environment has no ``wheel`` package, so PEP 517 editable
installs (``pip install -e .``) cannot build a wheel.  ``python setup.py
develop`` (or ``pip install -e . --no-build-isolation`` on machines with
``wheel``) installs the package in editable mode from ``pyproject.toml``.
"""

from setuptools import setup

setup()
